//! The per-pipe run-to-completion worker.
//!
//! One long-lived OS thread per pipe, owning its [`Pipe`] shard
//! exclusively for the engine's whole lifetime: the steer thread never
//! touches pipe state, so there is no per-batch spawn/join and no
//! cross-pipe sharing to serialize on. The worker is fed [`Job`]s
//! through a bounded SPSC ring and returns [`Done`]s through a second
//! ring; batch buffers circulate steer → worker → steer and are reused,
//! so the steady-state hot loop allocates nothing.
//!
//! Control-plane changes reach the worker as epoch stamps: every job
//! carries the [`ControlLog`] epoch observed when it was created, and
//! the worker adopts all ops up to exactly that stamp before acting on
//! the job (see `engine::control`). Expiry counts and the first error
//! produced by adopted ops accumulate in the worker and are reported on
//! the next [`Job::Control`] reply.

use super::control::{apply_op, ControlLog, ControlOp};
use super::{FlowSteering, Pipe, MAX_ADDR_BYTES};
use crate::dataplane::{DataPath, ForwardDecision};
use crate::memory::MemoryBreakdown;
use crate::stats::SwitchStats;
use crate::update::UpdatePhase;
use sr_exec::{Consumer, Producer};
use sr_hash::splitmix64;
use sr_types::{Dip, Nanos, PacketMeta, PoolVersion, TypeError, Vip};
use std::sync::Arc;

/// A reusable steered batch travelling steer → worker → steer.
pub(crate) struct BatchBuf {
    /// Adopt ops up to this epoch before processing.
    pub epoch: u64,
    /// Batch timestamp.
    pub now: Nanos,
    /// Streaming mode: fold decisions into (`folded_packets`,
    /// `folded_digest`) instead of scattering `out` back by `idx`.
    pub fold: bool,
    /// Original input positions of the steered packets.
    pub idx: Vec<u32>,
    /// The steered packets.
    pub pkts: Vec<PacketMeta>,
    /// The pipe's decisions, parallel to `pkts`.
    pub out: Vec<ForwardDecision>,
    /// Fold result: packets processed.
    pub folded_packets: u64,
    /// Fold result: commutative decision digest (see [`fold_batch`]).
    pub folded_digest: u64,
}

impl BatchBuf {
    /// A fresh, empty buffer.
    pub(crate) fn boxed() -> Box<BatchBuf> {
        Box::new(BatchBuf {
            epoch: 0,
            now: Nanos::ZERO,
            fold: false,
            idx: Vec::new(),
            pkts: Vec::new(),
            out: Vec::new(),
            folded_packets: 0,
            folded_digest: 0,
        })
    }

    /// Clear contents, retaining capacity (the zero-alloc recycle path).
    pub(crate) fn reset(&mut self) {
        self.idx.clear();
        self.pkts.clear();
        self.out.clear();
        self.folded_packets = 0;
        self.folded_digest = 0;
    }
}

/// Work sent to a pipe worker. Shutdown is the ring closing, not a
/// variant, so queued jobs still drain during teardown.
pub(crate) enum Job {
    /// Process a steered batch (after adopting up to its epoch).
    Batch(Box<BatchBuf>),
    /// Adopt up to `epoch` and reply with accumulated op outcomes.
    Control {
        /// Adoption target.
        epoch: u64,
    },
    /// Adopt up to `epoch`, then answer a read-only query.
    Query {
        /// Adoption target.
        epoch: u64,
        /// What to read.
        query: Query,
    },
}

/// Completion sent back to the steer thread.
pub(crate) enum Done {
    /// A processed batch (buffer returns to the caller for reuse).
    Batch(Box<BatchBuf>),
    /// Reply to [`Job::Control`].
    Control(ControlReply),
    /// Reply to [`Job::Query`].
    Query(Box<QueryReply>),
}

/// Outcomes of every op adopted since the previous control reply.
pub(crate) struct ControlReply {
    /// Connections expired by adopted `ExpireIdle` ops.
    pub expired: usize,
    /// First error any adopted op produced. Control state is identical
    /// in every pipe, so all pipes fail (or succeed) identically.
    pub error: Option<TypeError>,
}

/// Read-only questions answered from a worker's pipe state.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Query {
    /// Merged switch counters.
    Stats,
    /// Installed connections.
    ConnCount,
    /// A VIP's update phase.
    UpdatePhase(Vip),
    /// A VIP's newest pool version.
    CurrentVersion(Vip),
    /// A VIP's newest pool members.
    CurrentDips(Vip),
    /// Version-manager counters for a VIP.
    VersionCounters(Vip),
    /// TransitTable counters.
    TransitCounters,
    /// SRAM footprint.
    Memory,
    /// Earliest pending control-plane wakeup.
    NextWakeup,
}

/// One pipe's answer to a [`Query`].
pub(crate) enum QueryReply {
    /// Counters (cloned; maps and all).
    Stats(SwitchStats),
    /// Installed connections.
    ConnCount(usize),
    /// Update phase, if the VIP exists.
    UpdatePhase(Option<UpdatePhase>),
    /// Newest pool version, if the VIP exists.
    CurrentVersion(Option<PoolVersion>),
    /// Newest pool members, if the VIP exists (owned: the data crosses
    /// a thread boundary, so borrowing from the pipe is impossible).
    CurrentDips(Option<Vec<Dip>>),
    /// (allocations, reuses, pool_changes, live_versions).
    VersionCounters(Option<(u64, u64, u64, usize)>),
    /// (recorded, checks, hits, size_bytes).
    TransitCounters((u64, u64, u64, usize)),
    /// SRAM footprint.
    Memory(MemoryBreakdown),
    /// Earliest wakeup.
    NextWakeup(Option<Nanos>),
}

/// Adoption cursor plus the outcome accumulators carried between
/// control replies.
pub(crate) struct Adopter {
    cursor: u64,
    expired: usize,
    error: Option<TypeError>,
    /// Reused scratch for `Arc` refs copied out of the log.
    ops: Vec<Arc<ControlOp>>,
}

impl Adopter {
    pub(crate) fn new() -> Adopter {
        Adopter {
            cursor: 0,
            expired: 0,
            error: None,
            ops: Vec::new(),
        }
    }

    /// Apply every op in `(cursor, target]` to the pipe, in publication
    /// order. Holds the log lock only while copying refs.
    pub(crate) fn adopt_to(&mut self, pipe: &mut Pipe, log: &ControlLog, target: u64) {
        if self.cursor >= target {
            return;
        }
        self.ops.clear();
        log.copy_range(self.cursor, target, &mut self.ops);
        let id = pipe.id();
        for op in &self.ops {
            let (expired, result) = apply_op(id, pipe.switch_mut(), op);
            self.expired += expired;
            if self.error.is_none() {
                self.error = result.err();
            }
        }
        self.cursor = target;
        // Drop the Arc refs now: retaining them would keep truncated ops
        // alive until the next adoption.
        self.ops.clear();
    }

    /// Take the accumulated outcomes for a control reply.
    pub(crate) fn take_outcomes(&mut self) -> ControlReply {
        ControlReply {
            expired: std::mem::take(&mut self.expired),
            error: self.error.take(),
        }
    }
}

/// Answer a query from the worker's pipe (allocates freely: this is the
/// control plane).
pub(crate) fn answer_query(pipe: &Pipe, query: Query) -> Done {
    let sw = pipe.switch();
    let reply = match query {
        Query::Stats => QueryReply::Stats(sw.stats().clone()),
        Query::ConnCount => QueryReply::ConnCount(sw.conn_count()),
        Query::UpdatePhase(vip) => QueryReply::UpdatePhase(sw.update_phase(vip)),
        Query::CurrentVersion(vip) => QueryReply::CurrentVersion(sw.current_version(vip)),
        Query::CurrentDips(vip) => {
            QueryReply::CurrentDips(sw.current_dips(vip).map(|d| d.to_vec()))
        }
        Query::VersionCounters(vip) => QueryReply::VersionCounters(sw.version_counters(vip)),
        Query::TransitCounters => QueryReply::TransitCounters(sw.transit_counters()),
        Query::Memory => QueryReply::Memory(sw.memory()),
        Query::NextWakeup => QueryReply::NextWakeup(sw.next_wakeup()),
    };
    Done::Query(Box::new(reply))
}

/// Fold a processed batch's decisions into a **commutative** digest:
/// each packet contributes `splitmix64(flow_hash(tuple) ^ word(decision))`
/// and contributions combine by wrapping addition, so the total is
/// independent of batch boundaries, pipe count, and completion order —
/// only the per-flow decisions matter. Streaming drivers compare these
/// digests across pipe counts to prove decision identity at full speed.
pub(crate) fn fold_batch(steering: &FlowSteering, buf: &mut BatchBuf) {
    let mut digest = 0u64;
    for (pkt, d) in buf.pkts.iter().zip(buf.out.iter()) {
        digest = digest.wrapping_add(packet_digest(steering, pkt, d));
    }
    buf.folded_packets = buf.pkts.len() as u64;
    buf.folded_digest = digest;
}

/// One packet's digest contribution (see [`fold_batch`]).
pub(crate) fn packet_digest(steering: &FlowSteering, pkt: &PacketMeta, d: &ForwardDecision) -> u64 {
    splitmix64(steering.flow_hash(&pkt.tuple) ^ decision_word(d))
}

/// A stable 64-bit encoding of a decision's externally visible fields
/// (path, DIP, version, hit flag) — the same fields the replay driver's
/// decision digest covers.
fn decision_word(d: &ForwardDecision) -> u64 {
    let path = match d.path {
        DataPath::AsicConnTable => 1u64,
        DataPath::AsicVipTable => 2,
        DataPath::SoftwareRedirect => 3,
        DataPath::Dropped => 4,
        DataPath::NotVip => 5,
    };
    let mut w = splitmix64(path | (u64::from(d.conn_table_hit) << 3));
    if let Some(v) = d.version {
        w ^= splitmix64(0x7665_7273 ^ u64::from(v.0));
    }
    if let Some(dip) = d.dip {
        let mut bytes = [0u8; MAX_ADDR_BYTES];
        let n = dip.0.encode_to(&mut bytes, 0);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes.get(..n).unwrap_or(&[]) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        w ^= h;
    }
    w
}

/// The worker thread body: adopt → process → complete, run to
/// completion until the job ring closes. Buffer recycling keeps the
/// steady state allocation-free; the loop itself is panic-free (a dead
/// completion ring means the facade is gone — exit, don't unwind).
pub(crate) fn worker_loop(
    mut pipe: Pipe,
    steering: FlowSteering,
    log: Arc<ControlLog>,
    mut jobs: Consumer<Job>,
    mut done: Producer<Done>,
    pin_core: Option<usize>,
) {
    if let Some(core) = pin_core {
        // Best-effort: an unpinnable host just runs unpinned.
        let _ = sr_exec::pin_current_thread(core);
    }
    let mut adopter = Adopter::new();
    // srlint: hot-path begin
    while let Some(job) = jobs.pop() {
        match job {
            Job::Batch(mut buf) => {
                adopter.adopt_to(&mut pipe, &log, buf.epoch);
                buf.out.clear();
                pipe.switch_mut()
                    .process_batch_into(&buf.pkts, buf.now, &mut buf.out);
                if buf.fold {
                    fold_batch(&steering, &mut buf);
                }
                if done.push(Done::Batch(buf)).is_err() {
                    break;
                }
            }
            Job::Control { epoch } => {
                adopter.adopt_to(&mut pipe, &log, epoch);
                let reply = adopter.take_outcomes();
                if done.push(Done::Control(reply)).is_err() {
                    break;
                }
            }
            Job::Query { epoch, query } => {
                adopter.adopt_to(&mut pipe, &log, epoch);
                if done.push(answer_query(&pipe, query)).is_err() {
                    break;
                }
            }
        }
    }
    // srlint: hot-path end
}
