//! Epoch-versioned control-plane op log (the "RCU" half of engine v2).
//!
//! Engine v1 broadcast every control-plane call (VIP registration,
//! 3-step PCC updates, health events, idle-expiry ticks) to all pipes
//! inline under the caller, which serialized the control plane against
//! the data plane. Engine v2 instead *publishes* each call as an
//! immutable [`ControlOp`] appended to a [`ControlLog`]; the log's
//! length is the **epoch**. Every batch handed to a pipe worker is
//! stamped with the epoch observed at steer time, and a worker adopts
//! all ops up to exactly that stamp *before* processing the batch — a
//! batch boundary is the only place pipe state changes, so the
//! interleaving of ops and batches is identical in every pipe and for
//! every pipe count, which is what keeps decisions bit-identical and
//! PCC intact under concurrent updates.
//!
//! RCU flavour: published entries are immutable and shared by `Arc`;
//! readers copy the `Arc` references they need under a short lock and
//! apply them outside it, so a worker never holds the log lock while
//! touching its pipe. The facade truncates the log once every pipe has
//! confirmed adoption (the "grace period"), keeping memory bounded.

use crate::health::HealthEvent;
use crate::pool::PoolUpdate;
use crate::switch::SilkRoadSwitch;
use parking_lot::Mutex;
use sr_asic::MeterConfig;
use sr_types::{Dip, FiveTuple, Nanos, TypeError, Vip};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// One published control-plane operation. Immutable once in the log.
#[derive(Clone, Debug)]
pub(crate) enum ControlOp {
    /// Register a VIP with its initial DIP pool (every pipe).
    AddVip {
        /// The VIP.
        vip: Vip,
        /// Initial pool members.
        dips: Vec<Dip>,
    },
    /// Remove a VIP (every pipe).
    RemoveVip {
        /// The VIP.
        vip: Vip,
    },
    /// Start a 3-step PCC pool update (every pipe).
    RequestUpdate {
        /// The VIP.
        vip: Vip,
        /// The pool change.
        op: PoolUpdate,
        /// Publication time.
        now: Nanos,
    },
    /// Apply health transitions (every pipe).
    Health {
        /// The transitions.
        events: Vec<HealthEvent>,
        /// Publication time.
        now: Nanos,
    },
    /// Attach a VIP meter (every pipe).
    AttachMeter {
        /// The VIP.
        vip: Vip,
        /// Meter parameters.
        cfg: MeterConfig,
    },
    /// Detach a VIP meter (every pipe).
    DetachMeter {
        /// The VIP.
        vip: Vip,
    },
    /// Run the control plane forward to `now` (every pipe).
    Advance {
        /// Target time.
        now: Nanos,
    },
    /// Run an idle-expiry scan (every pipe; counts are summed).
    ExpireIdle {
        /// Scan time.
        now: Nanos,
    },
    /// Close one connection. Steering picked the owning pipe at publish
    /// time; other pipes skip it (flow-to-pipe affinity means only the
    /// owner can hold the entry).
    CloseConn {
        /// The connection.
        tuple: FiveTuple,
        /// Close time.
        now: Nanos,
        /// The owning pipe's index.
        pipe: usize,
    },
}

/// Apply one op to one pipe's switch. Returns (connections expired,
/// result). Shared by the threaded workers and the inline backend so
/// both interpret the op stream identically.
pub(crate) fn apply_op(
    pipe_id: usize,
    sw: &mut SilkRoadSwitch,
    op: &ControlOp,
) -> (usize, Result<(), TypeError>) {
    match op {
        ControlOp::AddVip { vip, dips } => (0, sw.add_vip(*vip, dips.clone())),
        ControlOp::RemoveVip { vip } => (0, sw.remove_vip(*vip)),
        ControlOp::RequestUpdate { vip, op, now } => (0, sw.request_update(*vip, *op, *now)),
        ControlOp::Health { events, now } => (0, sw.apply_health_events(events, *now)),
        ControlOp::AttachMeter { vip, cfg } => {
            sw.attach_meter(*vip, *cfg);
            (0, Ok(()))
        }
        ControlOp::DetachMeter { vip } => {
            sw.detach_meter(*vip);
            (0, Ok(()))
        }
        ControlOp::Advance { now } => {
            sw.advance(*now);
            (0, Ok(()))
        }
        ControlOp::ExpireIdle { now } => (sw.expire_idle(*now), Ok(())),
        ControlOp::CloseConn { tuple, now, pipe } => {
            if *pipe == pipe_id {
                sw.close_connection(tuple, *now);
            }
            (0, Ok(()))
        }
    }
}

/// Append-only log of published ops; `epoch() == base + len` counts
/// every op ever published. See the module docs for the adoption
/// protocol.
pub(crate) struct ControlLog {
    /// Published-op count; readable without the lock.
    epoch: AtomicU64,
    inner: Mutex<LogInner>,
}

struct LogInner {
    /// Epoch of the first retained op (earlier ops were truncated after
    /// every pipe adopted them).
    base: u64,
    ops: Vec<Arc<ControlOp>>,
}

impl ControlLog {
    /// An empty log at epoch 0.
    pub(crate) fn new() -> ControlLog {
        ControlLog {
            epoch: AtomicU64::new(0),
            inner: Mutex::new(LogInner {
                base: 0,
                ops: Vec::new(),
            }),
        }
    }

    /// The current epoch (total ops ever published).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Publish one op; returns the epoch that includes it.
    pub(crate) fn publish(&self, op: ControlOp) -> u64 {
        let mut g = self.inner.lock();
        g.ops.push(Arc::new(op));
        let e = g.base + g.ops.len() as u64;
        self.epoch.store(e, SeqCst);
        e
    }

    /// Copy the `Arc` refs of ops in `[from, to)` into `buf` (clamped to
    /// what the log retains). Callers apply them *after* releasing the
    /// internal lock — this method holds it only for the pointer copies.
    pub(crate) fn copy_range(&self, from: u64, to: u64, buf: &mut Vec<Arc<ControlOp>>) {
        let g = self.inner.lock();
        let lo = from.max(g.base).saturating_sub(g.base) as usize;
        let hi = (to.max(g.base).saturating_sub(g.base) as usize).min(g.ops.len());
        if let Some(range) = g.ops.get(lo..hi) {
            buf.extend(range.iter().cloned());
        }
    }

    /// Drop every op at epoch ≤ `upto`. Only call once all adopters have
    /// confirmed reaching `upto` (the facade does this after each
    /// synchronous control round-trip).
    pub(crate) fn truncate_to(&self, upto: u64) {
        let mut g = self.inner.lock();
        if upto <= g.base {
            return;
        }
        let n = ((upto - g.base) as usize).min(g.ops.len());
        g.ops.drain(..n);
        g.base += n as u64;
    }

    /// Ops currently retained (post-truncation), for tests.
    #[cfg(test)]
    pub(crate) fn retained(&self) -> usize {
        self.inner.lock().ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn advance_op(s: u64) -> ControlOp {
        ControlOp::Advance {
            now: Nanos::from_secs(s),
        }
    }

    fn op_secs(op: &ControlOp) -> u64 {
        match op {
            ControlOp::Advance { now } => now.0 / 1_000_000_000,
            _ => panic!("test publishes only Advance ops"),
        }
    }

    #[test]
    fn publish_bumps_epoch_and_copy_range_clamps() {
        let log = ControlLog::new();
        assert_eq!(log.epoch(), 0);
        for s in 0..10 {
            assert_eq!(log.publish(advance_op(s)), s + 1);
        }
        let mut buf = Vec::new();
        log.copy_range(3, 7, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(op_secs(&buf[0]), 3);
        assert_eq!(op_secs(&buf[3]), 6);
        // Out-of-retention and inverted ranges yield nothing extra.
        buf.clear();
        log.copy_range(10, 10, &mut buf);
        log.copy_range(7, 3, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn truncation_keeps_epochs_stable() {
        let log = ControlLog::new();
        for s in 0..8 {
            log.publish(advance_op(s));
        }
        log.truncate_to(5);
        assert_eq!(log.epoch(), 8);
        assert_eq!(log.retained(), 3);
        // Epoch-addressed reads still line up after the base moved.
        let mut buf = Vec::new();
        log.copy_range(5, 8, &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(op_secs(&buf[0]), 5);
        // Requests below the base are clamped, not misaligned.
        buf.clear();
        log.copy_range(0, 8, &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(op_secs(&buf[0]), 5);
        // Truncation is idempotent and monotonic.
        log.truncate_to(5);
        log.truncate_to(2);
        assert_eq!(log.retained(), 3);
    }

    /// Satellite: publish/adopt under contention. Four adopter threads
    /// chase a publisher; every adopter must observe every op exactly
    /// once, in publication order, no matter how the schedules
    /// interleave.
    #[test]
    fn concurrent_adopters_see_every_op_in_order() {
        const OPS: u64 = 2_000;
        const ADOPTERS: usize = 4;
        let log = Arc::new(ControlLog::new());
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for _ in 0..ADOPTERS {
            let log = Arc::clone(&log);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut cursor = 0u64;
                let mut buf = Vec::new();
                let mut seen = Vec::new();
                loop {
                    let target = log.epoch();
                    if cursor < target {
                        buf.clear();
                        log.copy_range(cursor, target, &mut buf);
                        assert_eq!(buf.len() as u64, target - cursor, "range short");
                        for op in &buf {
                            seen.push(op_secs(op));
                        }
                        cursor = target;
                    } else if stop.load(SeqCst) && log.epoch() == cursor {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
                seen
            }));
        }
        for s in 0..OPS {
            log.publish(advance_op(s));
        }
        stop.store(true, SeqCst);
        for t in threads {
            let seen = t.join().unwrap();
            let expect: Vec<u64> = (0..OPS).collect();
            assert_eq!(seen, expect, "adopter lost or reordered ops");
        }
    }
}
