//! DIP pools and DIPPoolTable (§4.2).
//!
//! A [`DipPool`] is the member list behind one `(VIP, version)` pair. Pools
//! use **positional hashing**: a connection's DIP is
//! `members[scale(hash(5-tuple), len)]`, so a pool's mapping is a pure
//! function of its member vector. Once a version has live connections its
//! pool never changes — with the single documented exception of *version
//! reuse*, which substitutes a dead (removed) DIP in place, leaving every
//! live connection's slot untouched.

use sr_hash::FxHashMap;
use sr_hash::{ecmp_select, HashFn};
use sr_types::{Dip, FiveTuple, PoolVersion, Vip};

/// One operator-requested DIP-pool change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolUpdate {
    /// Add a DIP (provisioning, or a rebooted DIP returning).
    Add(Dip),
    /// Remove a DIP (failure, upgrade reboot, preemption, removal).
    Remove(Dip),
}

/// An immutable-membership DIP pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DipPool {
    members: Vec<Dip>,
}

impl DipPool {
    /// Build a pool from a member list.
    pub fn new(members: Vec<Dip>) -> DipPool {
        DipPool { members }
    }

    /// The member list.
    pub fn members(&self) -> &[Dip] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `dip` is a member.
    pub fn contains(&self, dip: &Dip) -> bool {
        self.members.contains(dip)
    }

    /// Select the DIP for a connection by positional hashing.
    pub fn select(&self, tuple: &FiveTuple, hasher: &HashFn) -> Option<Dip> {
        self.select_hashed(hasher.hash(tuple.tuple_key().as_slice()))
    }

    /// [`DipPool::select`] from an already-computed select hash (the
    /// hash-once packet path).
    pub fn select_hashed(&self, hash: u64) -> Option<Dip> {
        let idx = ecmp_select(hash, self.members.len())?;
        Some(self.members[idx])
    }

    /// Pool with `dip` appended (the `Add` derivation).
    pub fn with_added(&self, dip: Dip) -> DipPool {
        let mut members = self.members.clone();
        members.push(dip);
        DipPool { members }
    }

    /// Pool with `dip` removed, order of the rest preserved (the `Remove`
    /// derivation). Returns the removed slot index if present.
    pub fn with_removed(&self, dip: Dip) -> (DipPool, Option<usize>) {
        match self.members.iter().position(|d| *d == dip) {
            Some(i) => {
                let mut members = self.members.clone();
                members.remove(i);
                (DipPool { members }, Some(i))
            }
            None => (self.clone(), None),
        }
    }

    /// Whether two pools contain exactly the same members, regardless of
    /// slot order. Slot order changes the positional mapping, but any live
    /// pool with the right member *set* is a valid version-reuse target:
    /// new connections simply hash over its (consistent) order.
    pub fn same_members(&self, other: &DipPool) -> bool {
        if self.members.len() != other.members.len() {
            return false;
        }
        let mut a = self.members.clone();
        let mut b = other.members.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// In-place substitution `old -> new` (version reuse; see module docs).
    /// Returns whether a substitution happened.
    pub fn substitute(&mut self, old: Dip, new: Dip) -> bool {
        let mut hit = false;
        for m in &mut self.members {
            if *m == old {
                *m = new;
                hit = true;
            }
        }
        hit
    }
}

/// DIPPoolTable: `(VIP, version) -> DipPool`.
///
/// "DIPPoolTable is similar to an ECMP table that maps ECMP group ID to a
/// set of ECMP members." Pools are owned here; the version allocator tracks
/// their lifecycle.
#[derive(Default, Debug)]
pub struct DipPoolTable {
    pools: FxHashMap<(Vip, PoolVersion), DipPool>,
}

impl DipPoolTable {
    /// Empty table.
    pub fn new() -> DipPoolTable {
        DipPoolTable::default()
    }

    /// Install a pool for `(vip, version)`.
    pub fn insert(&mut self, vip: Vip, version: PoolVersion, pool: DipPool) {
        self.pools.insert((vip, version), pool);
    }

    /// Fetch a pool.
    pub fn get(&self, vip: Vip, version: PoolVersion) -> Option<&DipPool> {
        self.pools.get(&(vip, version))
    }

    /// Fetch a pool mutably (version-reuse substitution only).
    pub fn get_mut(&mut self, vip: Vip, version: PoolVersion) -> Option<&mut DipPool> {
        self.pools.get_mut(&(vip, version))
    }

    /// Remove a destroyed version's pool.
    pub fn remove(&mut self, vip: Vip, version: PoolVersion) -> Option<DipPool> {
        self.pools.remove(&(vip, version))
    }

    /// Rows currently stored (memory accounting).
    pub fn rows(&self) -> usize {
        self.pools.len()
    }

    /// Total members across pools (memory accounting: one action-member
    /// word per member).
    pub fn total_members(&self) -> usize {
        self.pools.values().map(|p| p.len()).sum()
    }

    /// Iterate pools of one VIP.
    pub fn pools_of(&self, vip: Vip) -> impl Iterator<Item = (PoolVersion, &DipPool)> {
        self.pools
            .iter()
            .filter(move |((v, _), _)| *v == vip)
            .map(|((_, ver), p)| (*ver, p))
    }

    /// Apply `substitute(old, new)` to every pool of `vip` (version reuse
    /// propagation — only ever called with `old` being a dead DIP).
    pub fn substitute_everywhere(&mut self, vip: Vip, old: Dip, new: Dip) -> usize {
        let mut n = 0;
        for ((v, _), pool) in self.pools.iter_mut() {
            if *v == vip && pool.substitute(old, new) {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn conn(p: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, p), Addr::v4(20, 0, 0, 1, 80))
    }

    #[test]
    fn select_is_deterministic_and_in_pool() {
        let pool = DipPool::new(vec![dip(1), dip(2), dip(3)]);
        let h = HashFn::new(1);
        for p in 0..100 {
            let d = pool.select(&conn(p), &h).unwrap();
            assert!(pool.contains(&d));
            assert_eq!(pool.select(&conn(p), &h), Some(d));
        }
    }

    #[test]
    fn empty_pool_selects_none() {
        let pool = DipPool::new(vec![]);
        assert_eq!(pool.select(&conn(1), &HashFn::new(0)), None);
        assert!(pool.is_empty());
    }

    #[test]
    fn derivations() {
        let pool = DipPool::new(vec![dip(1), dip(2)]);
        let added = pool.with_added(dip(3));
        assert_eq!(added.len(), 3);
        let (removed, slot) = added.with_removed(dip(2));
        assert_eq!(slot, Some(1));
        assert_eq!(removed.members(), &[dip(1), dip(3)]);
        let (same, slot) = pool.with_removed(dip(9));
        assert_eq!(slot, None);
        assert_eq!(same, pool);
    }

    #[test]
    fn substitution_preserves_other_slots() {
        // The version-reuse invariant: substituting a dead member must not
        // move any connection that hashes to a surviving member.
        let mut pool = DipPool::new(vec![dip(1), dip(2), dip(3)]);
        let h = HashFn::new(7);
        let before: Vec<(u16, Dip)> = (0..500)
            .map(|p| (p, pool.select(&conn(p), &h).unwrap()))
            .collect();
        assert!(pool.substitute(dip(2), dip(9)));
        for (p, d) in before {
            let after = pool.select(&conn(p), &h).unwrap();
            if d == dip(2) {
                assert_eq!(after, dip(9));
            } else {
                assert_eq!(after, d, "live connection moved by substitution");
            }
        }
    }

    #[test]
    fn table_roundtrip_and_accounting() {
        let mut t = DipPoolTable::new();
        t.insert(vip(), PoolVersion(0), DipPool::new(vec![dip(1), dip(2)]));
        t.insert(vip(), PoolVersion(1), DipPool::new(vec![dip(1)]));
        assert_eq!(t.rows(), 2);
        assert_eq!(t.total_members(), 3);
        assert_eq!(t.get(vip(), PoolVersion(0)).unwrap().len(), 2);
        assert_eq!(t.pools_of(vip()).count(), 2);
        assert!(t.remove(vip(), PoolVersion(1)).is_some());
        assert_eq!(t.rows(), 1);
        assert!(t.get(vip(), PoolVersion(1)).is_none());
    }

    #[test]
    fn substitute_everywhere_touches_all_versions() {
        let mut t = DipPoolTable::new();
        t.insert(vip(), PoolVersion(0), DipPool::new(vec![dip(1), dip(2)]));
        t.insert(vip(), PoolVersion(1), DipPool::new(vec![dip(2)]));
        t.insert(vip(), PoolVersion(2), DipPool::new(vec![dip(3)]));
        let n = t.substitute_everywhere(vip(), dip(2), dip(8));
        assert_eq!(n, 2);
        assert!(t.get(vip(), PoolVersion(0)).unwrap().contains(&dip(8)));
        assert!(t.get(vip(), PoolVersion(1)).unwrap().contains(&dip(8)));
        assert!(!t.get(vip(), PoolVersion(2)).unwrap().contains(&dip(8)));
    }
}
