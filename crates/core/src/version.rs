//! DIP-pool version lifecycle (§4.2).
//!
//! Each VIP owns a small ring of version numbers (2^6 = 64 in the paper).
//! Applying a DIP-pool update creates a *new immutable pool* under a fresh
//! version; connections reference their pool by version, so old connections
//! keep hashing over the pool that existed when they arrived. A version is
//! destroyed — and its number returned to the ring — when its connection
//! refcount drops to zero.
//!
//! **Version reuse**: in a rolling reboot, `Remove(d)` is followed by an
//! `Add(d')` that substitutes for the removed DIP. Instead of burning a new
//! version, the manager reuses a live version whose member set equals the
//! *target* set up to replacing members that are no longer live — those
//! members are substituted in place. Substituting a dead DIP cannot move
//! any live connection (positional hashing; connections pinned to a dead
//! DIP are gone regardless), which is why this is the one sanctioned
//! mutation of an existing pool. Fig 15 quantifies the saving (330 updates
//! → ≤ 51 versions in a 10-min window).

use crate::pool::{DipPool, DipPoolTable, PoolUpdate};
use sr_hash::FxHashMap;
use sr_types::{Dip, PoolVersion, TypeError, Vip};
use std::collections::VecDeque;

/// Outcome of preparing an update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreparedUpdate {
    /// The version that becomes current at commit time.
    pub new_version: PoolVersion,
    /// Whether an existing version was reused instead of allocating.
    pub reused: bool,
}

/// Per-VIP version/pool lifecycle manager.
#[derive(Debug)]
pub struct VersionManager {
    vip: Vip,
    ring_bits: u8,
    reuse_enabled: bool,
    free: VecDeque<PoolVersion>,
    /// Refcount per live version: installed connections + explicit pins.
    refs: FxHashMap<PoolVersion, u64>,
    pools: DipPoolTable,
    current: PoolVersion,
    /// Versions newly allocated (Fig 15 "after reuse" ≈ allocations + 1).
    pub allocations: u64,
    /// Updates satisfied by redeeming a removal record.
    pub reuses: u64,
    /// Pool-changing updates applied (Fig 15 "before reuse" baseline).
    pub pool_changes: u64,
    /// Times the ring was empty at allocation (fallback trigger).
    pub exhaustions: u64,
}

impl VersionManager {
    /// Create a manager whose initial pool is `initial` under version 0.
    pub fn new(vip: Vip, initial: DipPool, ring_bits: u8, reuse_enabled: bool) -> VersionManager {
        let ring = 1u32 << ring_bits.min(16);
        let mut free: VecDeque<PoolVersion> = (1..ring).map(|v| PoolVersion(v as u16)).collect();
        free.make_contiguous();
        let mut pools = DipPoolTable::new();
        pools.insert(vip, PoolVersion(0), initial);
        VersionManager {
            vip,
            ring_bits,
            reuse_enabled,
            free,
            refs: FxHashMap::from_iter([(PoolVersion(0), 0)]),
            pools,
            current: PoolVersion(0),
            allocations: 1, // version 0
            reuses: 0,
            pool_changes: 0,
            exhaustions: 0,
        }
    }

    /// The VIP this manager serves.
    pub fn vip(&self) -> Vip {
        self.vip
    }

    /// The current (newest) version.
    pub fn current_version(&self) -> PoolVersion {
        self.current
    }

    /// Pool of a live version.
    pub fn pool(&self, v: PoolVersion) -> Option<&DipPool> {
        self.pools.get(self.vip, v)
    }

    /// Pool of the current version.
    pub fn current_pool(&self) -> &DipPool {
        self.pools
            .get(self.vip, self.current)
            .expect("current version always has a pool")
    }

    /// Live version count (DIPPoolTable rows for this VIP).
    pub fn live_versions(&self) -> usize {
        self.refs.len()
    }

    /// Total members across live pools (memory accounting).
    pub fn total_pool_members(&self) -> usize {
        self.pools.total_members()
    }

    /// Ring size.
    pub fn ring_size(&self) -> u32 {
        1u32 << self.ring_bits.min(16)
    }

    fn allocate(&mut self) -> Result<PoolVersion, TypeError> {
        // Opportunistic GC: versions can only be destroyed lazily (a
        // refcount that hits zero while the version is current stays live),
        // so sweep before declaring exhaustion.
        if self.free.is_empty() {
            self.sweep();
        }
        match self.free.pop_front() {
            Some(v) => {
                self.allocations += 1;
                self.refs.insert(v, 0);
                Ok(v)
            }
            None => {
                self.exhaustions += 1;
                Err(TypeError::CapacityExceeded {
                    what: "DIP pool version ring",
                })
            }
        }
    }

    /// Find a live non-current version reusable for the `target` member
    /// set: its pool must equal `target` as a multiset after replacing
    /// members that are *dead* (not in `target`) — the substitutions to
    /// perform are returned. Replacing only dead members guarantees no live
    /// connection's mapping moves.
    fn find_reusable(&self, target: &[Dip]) -> Option<(PoolVersion, Vec<(Dip, Dip)>)> {
        let mut target_sorted: Vec<Dip> = target.to_vec();
        target_sorted.sort_unstable();
        'candidates: for (v, p) in self.pools.pools_of(self.vip) {
            if v == self.current || p.len() != target.len() {
                continue;
            }
            // Multiset difference both ways.
            let mut have: Vec<Dip> = p.members().to_vec();
            have.sort_unstable();
            let mut extra_in_v = Vec::new(); // members of v not needed
            let mut missing = Vec::new(); // target members v lacks
            let (mut i, mut j) = (0usize, 0usize);
            while i < have.len() || j < target_sorted.len() {
                match (have.get(i), target_sorted.get(j)) {
                    (Some(a), Some(b)) if a == b => {
                        i += 1;
                        j += 1;
                    }
                    (Some(a), Some(b)) if a < b => {
                        extra_in_v.push(*a);
                        i += 1;
                    }
                    (Some(_), Some(b)) => {
                        missing.push(*b);
                        j += 1;
                    }
                    (Some(a), None) => {
                        extra_in_v.push(*a);
                        i += 1;
                    }
                    (None, Some(b)) => {
                        missing.push(*b);
                        j += 1;
                    }
                    (None, None) => break,
                }
            }
            debug_assert_eq!(extra_in_v.len(), missing.len());
            // Every member we would replace must be dead (absent from the
            // target live set).
            for e in &extra_in_v {
                if target_sorted.binary_search(e).is_ok() {
                    continue 'candidates;
                }
            }
            let subs: Vec<(Dip, Dip)> = extra_in_v.into_iter().zip(missing).collect();
            return Some((v, subs));
        }
        None
    }

    /// Destroy zero-ref non-current versions, returning their numbers to
    /// the ring.
    fn sweep(&mut self) {
        let dead: Vec<PoolVersion> = self
            .refs
            .iter()
            .filter(|(v, c)| **c == 0 && **v != self.current)
            .map(|(v, _)| *v)
            .collect();
        for v in dead {
            self.destroy(v);
        }
    }

    fn destroy(&mut self, v: PoolVersion) {
        self.refs.remove(&v);
        self.pools.remove(self.vip, v);
        self.free.push_back(v);
    }

    /// Prepare an update: create (or reuse) the version that will become
    /// current at commit time. The current version does **not** change yet —
    /// that is the VIPTable flip at `t_exec` of the 3-step protocol.
    ///
    /// Returns `Ok(None)` for no-op updates (removing an absent DIP, adding
    /// a present one).
    pub fn prepare(&mut self, update: PoolUpdate) -> Result<Option<PreparedUpdate>, TypeError> {
        // Derive the target member list.
        let target = match update {
            PoolUpdate::Remove(d) => {
                let (new_pool, slot) = self.current_pool().with_removed(d);
                if slot.is_none() {
                    return Ok(None);
                }
                new_pool
            }
            PoolUpdate::Add(d) => {
                if self.current_pool().contains(&d) {
                    return Ok(None);
                }
                self.current_pool().with_added(d)
            }
        };
        self.pool_changes += 1;
        if self.reuse_enabled {
            if let Some((v, subs)) = self.find_reusable(target.members()) {
                if let Some(pool) = self.pools.get_mut(self.vip, v) {
                    for (old, new) in subs {
                        pool.substitute(old, new);
                    }
                    self.reuses += 1;
                    return Ok(Some(PreparedUpdate {
                        new_version: v,
                        reused: true,
                    }));
                }
            }
        }
        let v = self.allocate()?;
        self.pools.insert(self.vip, v, target);
        Ok(Some(PreparedUpdate {
            new_version: v,
            reused: false,
        }))
    }

    /// Commit a prepared update: the VIPTable flip (`t_exec`). The old
    /// current version stays alive while referenced.
    pub fn commit(&mut self, new_version: PoolVersion) {
        debug_assert!(self.refs.contains_key(&new_version));
        self.current = new_version;
        self.sweep_if_cheap();
    }

    fn sweep_if_cheap(&mut self) {
        // Keep the ring topped up without scanning on every refcount change.
        if self.free.len() < 2 {
            self.sweep();
        }
    }

    /// A connection was installed referencing `v`.
    pub fn conn_installed(&mut self, v: PoolVersion) {
        if let Some(c) = self.refs.get_mut(&v) {
            *c += 1;
        }
    }

    /// A connection referencing `v` was removed/expired.
    pub fn conn_removed(&mut self, v: PoolVersion) {
        let destroy = match self.refs.get_mut(&v) {
            Some(c) => {
                *c = c.saturating_sub(1);
                *c == 0 && v != self.current
            }
            None => false,
        };
        if destroy {
            self.destroy(v);
        }
    }

    /// The non-current live version with the fewest references — the
    /// candidate for fallback migration on ring exhaustion.
    pub fn victim_version(&self) -> Option<PoolVersion> {
        self.refs
            .iter()
            .filter(|(v, _)| **v != self.current)
            .min_by_key(|(v, c)| (**c, v.0))
            .map(|(v, _)| *v)
    }

    /// Live versions with their reference counts (diagnostics).
    pub fn versions(&self) -> Vec<(PoolVersion, u64)> {
        let mut v: Vec<(PoolVersion, u64)> = self.refs.iter().map(|(v, c)| (*v, *c)).collect();
        v.sort_unstable_by_key(|(v, _)| v.0);
        v
    }

    /// Pin a version (e.g. the old version during a 3-step update) so it
    /// cannot be destroyed.
    pub fn retain(&mut self, v: PoolVersion) {
        self.conn_installed(v);
    }

    /// Release a pin.
    pub fn release(&mut self, v: PoolVersion) {
        self.conn_removed(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn mgr(reuse: bool) -> VersionManager {
        VersionManager::new(vip(), DipPool::new(vec![dip(1), dip(2), dip(3)]), 6, reuse)
    }

    #[test]
    fn initial_state() {
        let m = mgr(true);
        assert_eq!(m.current_version(), PoolVersion(0));
        assert_eq!(m.current_pool().len(), 3);
        assert_eq!(m.live_versions(), 1);
        assert_eq!(m.ring_size(), 64);
    }

    #[test]
    fn remove_then_commit_changes_current() {
        let mut m = mgr(true);
        let p = m.prepare(PoolUpdate::Remove(dip(2))).unwrap().unwrap();
        assert!(!p.reused);
        // Not yet committed: current still V0.
        assert_eq!(m.current_version(), PoolVersion(0));
        assert_eq!(m.pool(p.new_version).unwrap().len(), 2);
        m.commit(p.new_version);
        assert_eq!(m.current_version(), p.new_version);
        assert!(!m.current_pool().contains(&dip(2)));
    }

    #[test]
    fn noop_updates_return_none() {
        let mut m = mgr(true);
        assert_eq!(m.prepare(PoolUpdate::Remove(dip(9))).unwrap(), None);
        assert_eq!(m.prepare(PoolUpdate::Add(dip(1))).unwrap(), None);
    }

    #[test]
    fn rolling_reboot_reuses_versions() {
        // Remove(d) then Add(d') must redeem the pre-removal version.
        let mut m = mgr(true);
        let rm = m.prepare(PoolUpdate::Remove(dip(2))).unwrap().unwrap();
        m.commit(rm.new_version);
        let add = m.prepare(PoolUpdate::Add(dip(9))).unwrap().unwrap();
        assert!(add.reused);
        assert_eq!(
            add.new_version,
            PoolVersion(0),
            "redeems the pre-removal version"
        );
        m.commit(add.new_version);
        let pool = m.current_pool();
        assert_eq!(pool.len(), 3);
        assert!(pool.contains(&dip(9)));
        assert!(!pool.contains(&dip(2)));
        assert_eq!(m.reuses, 1);
        // Only 2 allocations ever (V0 + the removal version).
        assert_eq!(m.allocations, 2);
    }

    #[test]
    fn long_rolling_reboot_bounded_versions() {
        // 100 remove/add cycles with reuse: version usage stays tiny.
        let mut m = mgr(true);
        for i in 0..100u8 {
            let rm = m
                .prepare(PoolUpdate::Remove(dip(1 + (i % 3))))
                .unwrap()
                .unwrap();
            m.commit(rm.new_version);
            let add = m
                .prepare(PoolUpdate::Add(dip(1 + (i % 3))))
                .unwrap()
                .unwrap();
            assert!(add.reused, "cycle {i} failed to reuse");
            m.commit(add.new_version);
        }
        assert_eq!(m.pool_changes, 200);
        assert!(m.allocations <= 5, "allocations {}", m.allocations);
    }

    #[test]
    fn without_reuse_every_update_allocates() {
        let mut m = mgr(false);
        for _ in 0..5 {
            let rm = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
            m.commit(rm.new_version);
            let add = m.prepare(PoolUpdate::Add(dip(1))).unwrap().unwrap();
            assert!(!add.reused);
            m.commit(add.new_version);
        }
        assert_eq!(m.allocations, 11); // V0 + 10 updates
    }

    #[test]
    fn interleaved_rolling_batch() {
        // Remove d1, remove d2, add x, add y: both adds reuse, and the
        // final live set is {d3, x, y}.
        let mut m = mgr(true);
        let r1 = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
        m.commit(r1.new_version);
        let r2 = m.prepare(PoolUpdate::Remove(dip(2))).unwrap().unwrap();
        m.commit(r2.new_version);
        let a1 = m.prepare(PoolUpdate::Add(dip(7))).unwrap().unwrap();
        assert!(a1.reused);
        m.commit(a1.new_version);
        let a2 = m.prepare(PoolUpdate::Add(dip(8))).unwrap().unwrap();
        assert!(a2.reused);
        m.commit(a2.new_version);
        let members: Vec<Dip> = m.current_pool().members().to_vec();
        assert_eq!(members.len(), 3);
        assert!(members.contains(&dip(3)));
        assert!(members.contains(&dip(7)));
        assert!(members.contains(&dip(8)));
        assert!(!members.contains(&dip(1)) && !members.contains(&dip(2)));
    }

    #[test]
    fn plain_add_invalidates_records() {
        let mut m = mgr(true);
        let r = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
        m.commit(r.new_version);
        // A capacity-expansion add (not substituting anything) must not be
        // treated as a reboot return... it *will* redeem (the manager can't
        // tell intent apart) — that is the paper's semantics too: any added
        // DIP substitutes the most recent removal. But a SECOND plain add
        // with no outstanding removal allocates and clears stale records.
        let a1 = m.prepare(PoolUpdate::Add(dip(7))).unwrap().unwrap();
        assert!(a1.reused);
        m.commit(a1.new_version);
        let a2 = m.prepare(PoolUpdate::Add(dip(8))).unwrap().unwrap();
        assert!(!a2.reused);
        m.commit(a2.new_version);
        assert_eq!(m.current_pool().len(), 4);
    }

    #[test]
    fn refcount_lifecycle_returns_versions() {
        let mut m = mgr(true);
        let v0 = m.current_version();
        let r = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
        m.commit(r.new_version);
        // One connection still references V0.
        m.conn_installed(v0);
        assert_eq!(m.live_versions(), 2);
        // Connection leaves: V0 is non-current with zero refs -> destroyed.
        m.conn_removed(v0);
        assert_eq!(m.live_versions(), 1);
        assert!(m.pool(v0).is_none());
    }

    #[test]
    fn current_version_survives_zero_refs() {
        let mut m = mgr(true);
        let v0 = m.current_version();
        m.conn_installed(v0);
        m.conn_removed(v0);
        assert!(
            m.pool(v0).is_some(),
            "current version must never be destroyed"
        );
    }

    #[test]
    fn pin_prevents_destruction() {
        let mut m = mgr(true);
        let v0 = m.current_version();
        let r = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
        m.retain(v0); // pinned by the in-flight update
        m.commit(r.new_version);
        m.conn_installed(v0);
        m.conn_removed(v0);
        assert!(m.pool(v0).is_some());
        m.release(v0);
        assert!(m.pool(v0).is_none());
    }

    #[test]
    fn ring_exhaustion_reported() {
        // Ring of 2 (1-bit versions), reuse disabled, every version pinned.
        let mut m = VersionManager::new(vip(), DipPool::new(vec![dip(1), dip(2)]), 1, false);
        let p1 = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
        m.retain(p1.new_version);
        m.commit(p1.new_version);
        // V0 is unpinned and non-current: the sweep recycles it here.
        let p2 = m.prepare(PoolUpdate::Add(dip(1))).unwrap().unwrap();
        m.retain(p2.new_version);
        m.commit(p2.new_version);
        // Both versions pinned: the ring is exhausted.
        assert!(m.prepare(PoolUpdate::Remove(dip(1))).is_err());
        assert_eq!(m.exhaustions, 1);
    }

    #[test]
    fn exhaustion_recovers_after_release() {
        let mut m = VersionManager::new(vip(), DipPool::new(vec![dip(1), dip(2)]), 1, false);
        let p1 = m.prepare(PoolUpdate::Remove(dip(1))).unwrap().unwrap();
        m.retain(p1.new_version);
        m.commit(p1.new_version);
        let p2 = m.prepare(PoolUpdate::Add(dip(1))).unwrap().unwrap();
        m.retain(p2.new_version);
        m.commit(p2.new_version);
        assert!(m.prepare(PoolUpdate::Remove(dip(1))).is_err());
        // Release the non-current pinned version; allocation works again.
        m.release(p1.new_version);
        assert!(m.prepare(PoolUpdate::Remove(dip(1))).unwrap().is_some());
    }
}
