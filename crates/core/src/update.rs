//! The 3-step PCC update protocol (§4.3, Fig 9).
//!
//! Per-VIP state machine:
//!
//! ```text
//!            request_update              pending(< t_req) drained
//!   Idle ────────────────────▶ Recording ────────────────────────▶ Draining
//!    ▲                        (step 1: bloom                       (step 2: flip done,
//!    │                         write-only)                          bloom read-only)
//!    └────────────────────────────────────────────────────────────────┘
//!                     pending(< t_exec) drained (step 3: clear)
//! ```
//!
//! * **step 1** (`Recording`, `t_req → t_exec`): every new connection to the
//!   VIP is recorded in TransitTable; the VIPTable still serves the old
//!   version. The step ends when every connection that arrived *before*
//!   `t_req` has its ConnTable entry installed.
//! * **step 2** (`Draining`, `t_exec → t_finish`): VIPTable serves both
//!   versions; ConnTable misses take the old version iff TransitTable hits.
//!   Ends when every connection that arrived before `t_exec` is installed.
//! * **step 3** (`t_finish`): TransitTable cleared (when no other VIP is
//!   mid-update), old version unpinned.
//!
//! Updates for a VIP already mid-update queue and run back-to-back.

use crate::pool::PoolUpdate;
use sr_types::{Nanos, PoolVersion};
use std::collections::VecDeque;

/// Which step a VIP's update is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePhase {
    /// No update in flight.
    Idle,
    /// Step 1: recording new connections, old version still current.
    Recording,
    /// Step 2: flipped; TransitTable consulted on ConnTable miss.
    Draining,
}

/// An in-flight update.
#[derive(Clone, Copy, Debug)]
pub struct ActiveUpdate {
    /// The operation being applied (kept for logging/ablation).
    pub op: PoolUpdate,
    /// `t_req`.
    pub requested_at: Nanos,
    /// `t_exec` (set on entering step 2).
    pub executed_at: Option<Nanos>,
    /// Version serving before the flip.
    pub old_version: PoolVersion,
    /// Version serving after the flip (prepared at `t_req`).
    pub new_version: PoolVersion,
    /// Whether the new version was a reuse (no allocation).
    pub reused: bool,
    /// Connections that arrived before `t_req` and are not yet installed.
    pub pending_before_req: u64,
    /// Connections recorded in TransitTable (arrived in `[t_req, t_exec)`)
    /// not yet installed. Valid in step 2.
    pub pending_recorded: u64,
}

/// Per-VIP update controller state.
#[derive(Debug)]
pub struct UpdateState {
    /// Current phase.
    pub phase: UpdatePhase,
    /// The active update's bookkeeping (`None` iff `phase == Idle`).
    pub active: Option<ActiveUpdate>,
    /// Updates requested while one is in flight.
    pub queue: VecDeque<PoolUpdate>,
    /// Completed updates (for stats).
    pub completed: u64,
}

impl Default for UpdateState {
    fn default() -> Self {
        UpdateState {
            phase: UpdatePhase::Idle,
            active: None,
            queue: VecDeque::new(),
            completed: 0,
        }
    }
}

impl UpdateState {
    /// Fresh idle state.
    pub fn new() -> UpdateState {
        UpdateState::default()
    }

    /// Whether an update can start immediately (nothing in flight).
    pub fn is_idle(&self) -> bool {
        self.phase == UpdatePhase::Idle
    }

    /// Enter step 1.
    pub fn begin(&mut self, update: ActiveUpdate) {
        debug_assert!(self.is_idle());
        self.phase = UpdatePhase::Recording;
        self.active = Some(update);
    }

    /// Record an install completion; returns the transition the switch must
    /// perform, if any.
    ///
    /// The pending counters are snapshots of the control plane's
    /// outstanding count taken at `t_req`/`t_exec`. Because the learning
    /// filter and the CPU queue are both FIFO, installs complete in arrival
    /// order, so the first `pending` completions after a snapshot are
    /// exactly the snapshot's connections — each completion decrements
    /// unconditionally.
    pub fn on_install(&mut self) -> Transition {
        let Some(active) = self.active.as_mut() else {
            return Transition::None;
        };
        match self.phase {
            UpdatePhase::Recording => {
                if active.pending_before_req > 0 {
                    active.pending_before_req -= 1;
                    if active.pending_before_req == 0 {
                        return Transition::Execute;
                    }
                }
                Transition::None
            }
            UpdatePhase::Draining => {
                if active.pending_recorded > 0 {
                    active.pending_recorded -= 1;
                    if active.pending_recorded == 0 {
                        return Transition::Finish;
                    }
                }
                Transition::None
            }
            UpdatePhase::Idle => Transition::None,
        }
    }

    /// Move to step 2 at `t_exec`; `outstanding` is the number of pending
    /// (recorded) connections at this instant. Returns whether step 2 can
    /// complete immediately (no pending connections at all).
    pub fn execute(&mut self, t_exec: Nanos, outstanding: u64) -> bool {
        let active = self.active.as_mut().expect("execute without active update");
        active.executed_at = Some(t_exec);
        active.pending_recorded = outstanding;
        self.phase = UpdatePhase::Draining;
        outstanding == 0
    }

    /// Step 3: clear the active update. Returns it for stats, plus the next
    /// queued op if any.
    pub fn finish(&mut self) -> (ActiveUpdate, Option<PoolUpdate>) {
        let done = self.active.take().expect("finish without active update");
        self.phase = UpdatePhase::Idle;
        self.completed += 1;
        (done, self.queue.pop_front())
    }
}

/// Transition requested by [`UpdateState::on_install`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Stay in the current phase.
    None,
    /// All pre-`t_req` connections installed: perform the `t_exec` flip.
    Execute,
    /// All recorded connections installed: perform step 3.
    Finish,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::{Addr, Dip};

    fn op() -> PoolUpdate {
        PoolUpdate::Add(Dip(Addr::v4(10, 0, 0, 9, 20)))
    }

    fn active(t_req: u64, pending: u64) -> ActiveUpdate {
        ActiveUpdate {
            op: op(),
            requested_at: Nanos::from_millis(t_req),
            executed_at: None,
            old_version: PoolVersion(0),
            new_version: PoolVersion(1),
            reused: false,
            pending_before_req: pending,
            pending_recorded: 0,
        }
    }

    #[test]
    fn full_cycle() {
        let mut s = UpdateState::new();
        assert!(s.is_idle());
        s.begin(active(10, 2));
        assert_eq!(s.phase, UpdatePhase::Recording);

        // Two installs (FIFO: necessarily the pre-t_req ones) end step 1.
        assert_eq!(s.on_install(), Transition::None);
        assert_eq!(s.on_install(), Transition::Execute);

        // Step 2 with 1 recorded pending connection.
        assert!(!s.execute(Nanos::from_millis(12), 1));
        assert_eq!(s.phase, UpdatePhase::Draining);
        // The recorded connection installs: step 3.
        assert_eq!(s.on_install(), Transition::Finish);

        let (done, next) = s.finish();
        assert_eq!(done.new_version, PoolVersion(1));
        assert!(next.is_none());
        assert!(s.is_idle());
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn zero_pending_executes_immediately() {
        let mut s = UpdateState::new();
        s.begin(active(10, 0));
        // The switch checks pending_before_req == 0 itself at t_req; model
        // that by executing immediately with zero outstanding.
        assert!(s.execute(Nanos::from_millis(10), 0));
    }

    #[test]
    fn queueing() {
        let mut s = UpdateState::new();
        s.begin(active(0, 0));
        s.queue.push_back(op());
        s.execute(Nanos::ZERO, 0);
        let (_, next) = s.finish();
        assert_eq!(next, Some(op()));
    }

    #[test]
    fn idle_install_is_noop() {
        let mut s = UpdateState::new();
        assert_eq!(s.on_install(), Transition::None);
    }

    #[test]
    fn extra_installs_in_draining_do_not_underflow() {
        let mut s = UpdateState::new();
        s.begin(active(10, 0));
        s.execute(Nanos::from_millis(10), 1);
        assert_eq!(s.on_install(), Transition::Finish);
        // A straggler completion after the counter hit zero is ignored.
        assert_eq!(s.on_install(), Transition::None);
    }
}
