//! Data-plane result types.
//!
//! The per-packet pipeline itself lives in [`crate::switch`] (it needs
//! mutable access to every table); this module defines what it returns.

use sr_types::{Dip, PoolVersion};

/// Which path a packet took through the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataPath {
    /// Forwarded entirely in the ASIC via a ConnTable hit.
    AsicConnTable,
    /// Forwarded entirely in the ASIC via the VIPTable miss path (first
    /// packets and pending connections).
    AsicVipTable,
    /// Redirected through switch software: a SYN that falsely hit an
    /// existing ConnTable entry (digest collision, §4.2) or falsely hit
    /// TransitTable in step 2 (§4.3). Repaired, then forwarded; costs the
    /// configured extra delay.
    SoftwareRedirect,
    /// Dropped: destination is a VIP with an empty pool.
    Dropped,
    /// Not VIP traffic: passed through to regular forwarding.
    NotVip,
}

/// Outcome of processing one packet.
#[derive(Clone, Copy, Debug)]
pub struct ForwardDecision {
    /// The chosen backend, if any.
    pub dip: Option<Dip>,
    /// Path taken.
    pub path: DataPath,
    /// The pool version used to resolve the DIP (None for `NotVip`/drops
    /// and for direct-DIP ConnTable hits).
    pub version: Option<PoolVersion>,
    /// Whether the decision came from a ConnTable hit.
    pub conn_table_hit: bool,
    /// Whether the ConnTable hit was a digest false positive (simulator
    /// visibility only — the ASIC cannot know).
    pub false_hit: bool,
}

impl ForwardDecision {
    /// A non-VIP passthrough decision.
    pub fn not_vip() -> ForwardDecision {
        ForwardDecision {
            dip: None,
            path: DataPath::NotVip,
            version: None,
            conn_table_hit: false,
            false_hit: false,
        }
    }

    /// A drop decision (empty pool).
    pub fn dropped() -> ForwardDecision {
        ForwardDecision {
            dip: None,
            path: DataPath::Dropped,
            version: None,
            conn_table_hit: false,
            false_hit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let n = ForwardDecision::not_vip();
        assert_eq!(n.path, DataPath::NotVip);
        assert!(n.dip.is_none());
        let d = ForwardDecision::dropped();
        assert_eq!(d.path, DataPath::Dropped);
        assert!(!d.conn_table_hit);
    }
}
