//! Data-plane result types and the hash-once key pipeline.
//!
//! The per-packet pipeline itself lives in [`crate::switch`] (it needs
//! mutable access to every table); this module defines what it returns,
//! plus the [`KeyHasher`]/[`HashedKey`] pair that lets the switch hash a
//! packet's 5-tuple key exactly once and derive every table's hash values
//! from that single pass.

use sr_hash::{hash_all, HashFn};
use sr_types::{Dip, FiveTuple, PoolVersion, RewriteMode, RewriteOp, TupleKey};

// The packet-time hash bundle and its lane bound are defined at the
// algorithm boundary (`sr-algo`), shared by every zoo member; SilkRoad's
// learn→install pipeline carries the same type.
pub use sr_algo::{ConnHashes, MAX_PACKET_HASHES};

/// Upper bound on the TransitTable bloom ways hashed lazily on the miss
/// path (the paper uses 4).
pub const MAX_BLOOM_HASHES: usize = 8;

/// The switch's per-packet hash-function list, split by when each value is
/// needed. The eager list — ConnTable stage bucket hashes, the ConnTable
/// match-field (digest) hash, the ECMP select hash — is everything a
/// steady-state ConnTable hit consumes; [`KeyHasher::hash_tuple`] evaluates
/// it in one multi-accumulator pass per packet ([`sr_hash::hash_all`]).
/// The TransitTable bloom hashes are only read on the VIPTable miss path,
/// so [`KeyHasher::bloom_hashes`] computes them on demand there and hit
/// packets never pay for them.
///
/// Both passes are bit-identical to calling each `HashFn` separately — so
/// every experiment number is unchanged by the hash-once path.
pub struct KeyHasher {
    fns: Vec<HashFn>,
    bloom_fns: Vec<HashFn>,
    conn_stages: usize,
}

impl KeyHasher {
    /// Assemble the layout. Panics if either function count exceeds its
    /// bound ([`MAX_PACKET_HASHES`] / [`MAX_BLOOM_HASHES`] — far beyond any
    /// paper configuration).
    pub fn new(
        conn_stage_fns: &[HashFn],
        conn_match_fn: HashFn,
        select_fn: HashFn,
        bloom_fns: &[HashFn],
    ) -> KeyHasher {
        let mut fns = Vec::with_capacity(conn_stage_fns.len() + 2);
        fns.extend_from_slice(conn_stage_fns);
        fns.push(conn_match_fn);
        fns.push(select_fn);
        assert!(
            fns.len() <= MAX_PACKET_HASHES,
            "packet path needs {} eager hash functions; MAX_PACKET_HASHES is {}",
            fns.len(),
            MAX_PACKET_HASHES
        );
        assert!(
            bloom_fns.len() <= MAX_BLOOM_HASHES,
            "miss path needs {} bloom hash functions; MAX_BLOOM_HASHES is {}",
            bloom_fns.len(),
            MAX_BLOOM_HASHES
        );
        KeyHasher {
            fns,
            bloom_fns: bloom_fns.to_vec(),
            conn_stages: conn_stage_fns.len(),
        }
    }

    /// Encode the tuple's inline key and evaluate every eager hash function
    /// over it in one pass. No heap allocation.
    pub fn hash_tuple(&self, tuple: &FiveTuple) -> HashedKey {
        let key = tuple.tuple_key();
        let mut vals = [0u64; MAX_PACKET_HASHES];
        hash_all(&self.fns, key.as_slice(), &mut vals[..self.fns.len()]);
        HashedKey {
            key,
            vals,
            conn_stages: self.conn_stages as u8,
        }
    }

    /// Evaluate the TransitTable bloom hashes over an already-encoded key —
    /// the miss path's lazy second pass. Bit-identical to running each
    /// bloom `HashFn` standalone; no heap allocation.
    pub fn bloom_hashes(&self, key: &TupleKey) -> BloomHashes {
        let mut vals = [0u64; MAX_BLOOM_HASHES];
        hash_all(
            &self.bloom_fns,
            key.as_slice(),
            &mut vals[..self.bloom_fns.len()],
        );
        BloomHashes {
            vals,
            n: self.bloom_fns.len() as u8,
        }
    }
}

/// One packet key plus the precomputed outputs of the eager
/// [`KeyHasher`] layout over it.
#[derive(Clone, Copy)]
pub struct HashedKey {
    key: TupleKey,
    vals: [u64; MAX_PACKET_HASHES],
    conn_stages: u8,
}

impl HashedKey {
    /// The inline key bytes.
    pub fn key(&self) -> &TupleKey {
        &self.key
    }

    /// Per-stage ConnTable bucket hashes.
    pub fn conn_stage_hashes(&self) -> &[u64] {
        &self.vals[..usize::from(self.conn_stages)]
    }

    /// The ConnTable match-field (digest) hash.
    pub fn conn_match_hash(&self) -> u64 {
        self.vals[usize::from(self.conn_stages)]
    }

    /// The ECMP/DIP-select hash.
    pub fn select_hash(&self) -> u64 {
        self.vals[usize::from(self.conn_stages) + 1]
    }

    /// Snapshot the ConnTable-relevant hashes (stage buckets + match/digest
    /// hash) for the learn→install pipeline: the learn event carries this
    /// so the eventual cuckoo insert reuses the packet-time hash pass
    /// instead of re-hashing the key on the switch CPU.
    pub fn conn_hashes(&self) -> ConnHashes {
        let mut stage_hashes = [0u64; MAX_PACKET_HASHES];
        let stages = usize::from(self.conn_stages);
        stage_hashes[..stages].copy_from_slice(&self.vals[..stages]);
        ConnHashes::from_parts(stage_hashes, self.conn_stages, self.conn_match_hash())
    }
}

/// The miss path's lazily computed TransitTable bloom hashes
/// ([`KeyHasher::bloom_hashes`]).
#[derive(Clone, Copy)]
pub struct BloomHashes {
    vals: [u64; MAX_BLOOM_HASHES],
    n: u8,
}

impl BloomHashes {
    /// One output per configured bloom way.
    pub fn as_slice(&self) -> &[u64] {
        &self.vals[..usize::from(self.n)]
    }
}

/// Which path a packet took through the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataPath {
    /// Forwarded entirely in the ASIC via a ConnTable hit.
    AsicConnTable,
    /// Forwarded entirely in the ASIC via the VIPTable miss path (first
    /// packets and pending connections).
    AsicVipTable,
    /// Redirected through switch software: a SYN that falsely hit an
    /// existing ConnTable entry (digest collision, §4.2) or falsely hit
    /// TransitTable in step 2 (§4.3). Repaired, then forwarded; costs the
    /// configured extra delay.
    SoftwareRedirect,
    /// Dropped: destination is a VIP with an empty pool.
    Dropped,
    /// Not VIP traffic: passed through to regular forwarding.
    NotVip,
}

/// Outcome of processing one packet. `Eq` so equivalence tests can compare
/// whole decision streams (e.g. multi-pipe vs single-pipe switches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForwardDecision {
    /// The chosen backend, if any.
    pub dip: Option<Dip>,
    /// Path taken.
    pub path: DataPath,
    /// The pool version used to resolve the DIP (None for `NotVip`/drops
    /// and for direct-DIP ConnTable hits).
    pub version: Option<PoolVersion>,
    /// Whether the decision came from a ConnTable hit.
    pub conn_table_hit: bool,
    /// Whether the ConnTable hit was a digest false positive (simulator
    /// visibility only — the ASIC cannot know).
    pub false_hit: bool,
}

impl ForwardDecision {
    /// A non-VIP passthrough decision.
    pub fn not_vip() -> ForwardDecision {
        ForwardDecision {
            dip: None,
            path: DataPath::NotVip,
            version: None,
            conn_table_hit: false,
            false_hit: false,
        }
    }

    /// A drop decision (empty pool).
    pub fn dropped() -> ForwardDecision {
        ForwardDecision {
            dip: None,
            path: DataPath::Dropped,
            version: None,
            conn_table_hit: false,
            false_hit: false,
        }
    }

    /// The wire-layer operation this decision asks of the rewrite engine:
    /// decisions that forward to a resolved DIP become a [`RewriteOp`]
    /// carried in `mode`; drops and non-VIP passthroughs touch nothing.
    #[inline]
    pub fn rewrite_op(&self, mode: RewriteMode) -> Option<RewriteOp> {
        match self.path {
            DataPath::AsicConnTable | DataPath::AsicVipTable | DataPath::SoftwareRedirect => {
                self.dip.map(|dip| RewriteOp { dip, mode })
            }
            DataPath::Dropped | DataPath::NotVip => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let n = ForwardDecision::not_vip();
        assert_eq!(n.path, DataPath::NotVip);
        assert!(n.dip.is_none());
        let d = ForwardDecision::dropped();
        assert_eq!(d.path, DataPath::Dropped);
        assert!(!d.conn_table_hit);
    }

    #[test]
    fn rewrite_op_mapping() {
        use sr_types::Addr;
        let dip = Dip(Addr::v4(10, 0, 0, 1, 20));
        let fwd = ForwardDecision {
            dip: Some(dip),
            path: DataPath::AsicConnTable,
            version: None,
            conn_table_hit: true,
            false_hit: false,
        };
        for mode in [RewriteMode::Nat, RewriteMode::Encap] {
            assert_eq!(fwd.rewrite_op(mode), Some(RewriteOp { dip, mode }));
        }
        let redirected = ForwardDecision {
            path: DataPath::SoftwareRedirect,
            ..fwd
        };
        assert!(redirected.rewrite_op(RewriteMode::Nat).is_some());
        assert!(ForwardDecision::dropped()
            .rewrite_op(RewriteMode::Nat)
            .is_none());
        assert!(ForwardDecision::not_vip()
            .rewrite_op(RewriteMode::Nat)
            .is_none());
    }
}
