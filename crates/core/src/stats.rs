//! Switch-level statistics counters.

use sr_hash::FxHashMap;
use sr_types::Vip;
use std::fmt;

/// Counters exported by a [`crate::SilkRoadSwitch`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets processed.
    pub packets: u64,
    /// Packets resolved by a ConnTable hit.
    pub conn_table_hits: u64,
    /// Packets resolved through the VIPTable miss path.
    pub vip_table_misses: u64,
    /// ConnTable hits that were digest false positives (any packet type).
    pub digest_false_hits: u64,
    /// SYNs redirected to software for digest-collision repair.
    pub syn_repairs: u64,
    /// Resident entries relocated to another stage during repair.
    pub relocations: u64,
    /// SYNs redirected because they falsely matched TransitTable in step 2.
    pub transit_syn_redirects: u64,
    /// Learn events accepted into the pipeline.
    pub learns: u64,
    /// ConnTable entries successfully installed.
    pub installs: u64,
    /// Installs skipped because the connection closed first.
    pub installs_skipped_closed: u64,
    /// Installs that failed because ConnTable was full (connection served
    /// via the software/fallback path instead).
    pub conn_table_overflows: u64,
    /// Connections currently in the fallback (direct-DIP) software table.
    pub fallback_entries: u64,
    /// DIP-pool updates requested.
    pub updates_requested: u64,
    /// Updates that were no-ops (removing an absent DIP etc.).
    pub updates_noop: u64,
    /// Updates fully completed (t_finish reached).
    pub updates_completed: u64,
    /// Updates queued behind an in-flight update at request time.
    pub updates_queued: u64,
    /// Version-ring exhaustion events (fallback migrations).
    pub version_exhaustions: u64,
    /// Connections migrated to the fallback table on exhaustion.
    pub exhaustion_migrations: u64,
    /// Connections closed/expired.
    pub closes: u64,
    /// Connections expired by idle-aging scans.
    pub idle_expired: u64,
    /// Packets dropped by per-VIP meters (DDoS/flash-crowd policing).
    pub metered_drops: u64,
    /// Live fallback-pinned connections per VIP (which VIPs are paying the
    /// software-path cost; entries are removed when their count hits 0).
    pub fallback_pins_by_vip: FxHashMap<Vip, u64>,
}

impl SwitchStats {
    /// Live fallback-pinned connections for one VIP.
    pub fn fallback_pins(&self, vip: Vip) -> u64 {
        self.fallback_pins_by_vip.get(&vip).copied().unwrap_or(0)
    }

    /// Fold another switch's counters into this one — the lossless
    /// aggregation the multi-pipe engine uses to present per-pipe stats as
    /// one chip-level view. Every scalar adds; per-VIP pin counts add
    /// keywise (a VIP's flows can pin fallback entries in several pipes).
    pub fn merge(&mut self, other: &SwitchStats) {
        self.packets += other.packets;
        self.conn_table_hits += other.conn_table_hits;
        self.vip_table_misses += other.vip_table_misses;
        self.digest_false_hits += other.digest_false_hits;
        self.syn_repairs += other.syn_repairs;
        self.relocations += other.relocations;
        self.transit_syn_redirects += other.transit_syn_redirects;
        self.learns += other.learns;
        self.installs += other.installs;
        self.installs_skipped_closed += other.installs_skipped_closed;
        self.conn_table_overflows += other.conn_table_overflows;
        self.fallback_entries += other.fallback_entries;
        self.updates_requested += other.updates_requested;
        self.updates_noop += other.updates_noop;
        self.updates_completed += other.updates_completed;
        self.updates_queued += other.updates_queued;
        self.version_exhaustions += other.version_exhaustions;
        self.exhaustion_migrations += other.exhaustion_migrations;
        self.closes += other.closes;
        self.idle_expired += other.idle_expired;
        self.metered_drops += other.metered_drops;
        for (vip, pins) in &other.fallback_pins_by_vip {
            *self.fallback_pins_by_vip.entry(*vip).or_insert(0) += pins;
        }
    }
}

impl fmt::Display for SwitchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "packets:            {}", self.packets)?;
        writeln!(
            f,
            "  conn-table hits:  {} ({} false, {} SYN repairs, {} relocations)",
            self.conn_table_hits, self.digest_false_hits, self.syn_repairs, self.relocations
        )?;
        writeln!(
            f,
            "  vip-table misses: {} ({} transit SYN redirects)",
            self.vip_table_misses, self.transit_syn_redirects
        )?;
        writeln!(
            f,
            "learns/installs:    {}/{} ({} skipped-closed, {} overflows)",
            self.learns, self.installs, self.installs_skipped_closed, self.conn_table_overflows
        )?;
        writeln!(
            f,
            "updates:            {} requested, {} completed, {} queued, {} noop",
            self.updates_requested, self.updates_completed, self.updates_queued, self.updates_noop
        )?;
        write!(
            f,
            "versions:           {} exhaustions ({} migrated); closes: {} (+{} idle-aged)",
            self.version_exhaustions, self.exhaustion_migrations, self.closes, self.idle_expired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_displays() {
        let s = SwitchStats::default();
        assert_eq!(s.packets, 0);
        let text = s.to_string();
        assert!(text.contains("packets:"));
        assert!(text.contains("updates:"));
    }

    #[test]
    fn merge_adds_scalars_and_per_vip_maps() {
        let vip = Vip(sr_types::Addr::v4(10, 0, 0, 1, 80));
        let mut a = SwitchStats {
            packets: 3,
            closes: 1,
            ..Default::default()
        };
        a.fallback_pins_by_vip.insert(vip, 2);
        let mut b = SwitchStats {
            packets: 4,
            installs: 5,
            ..Default::default()
        };
        b.fallback_pins_by_vip.insert(vip, 1);
        a.merge(&b);
        assert_eq!(a.packets, 7);
        assert_eq!(a.closes, 1);
        assert_eq!(a.installs, 5);
        assert_eq!(a.fallback_pins(vip), 3);
    }
}
