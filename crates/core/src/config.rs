//! SilkRoad switch configuration.

use sr_asic::{LearningFilterConfig, SwitchCpuConfig};
use sr_types::{Duration, TypeError};

/// How ConnTable action data identifies the destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnMapping {
    /// Store a DIP-pool version; the DIP is re-derived by hashing the
    /// 5-tuple over the immutable versioned pool (the paper's design,
    /// 6 bits of action data).
    Version,
    /// Store the DIP directly (the §4.2 fallback for few/long-lived
    /// connections; larger action data, no DIPPoolTable indirection).
    DirectDip,
}

/// Full configuration of a [`crate::SilkRoadSwitch`].
#[derive(Clone, Debug)]
pub struct SilkRoadConfig {
    /// Provisioned ConnTable capacity (entries).
    pub conn_capacity: usize,
    /// Pipeline stages ConnTable spans (each with its own hash function —
    /// also the relocation headroom for digest collisions).
    pub conn_stages: usize,
    /// Digest width in bits (paper default 16; §6.1 also evaluates 24).
    pub digest_bits: u8,
    /// Optional per-stage digest widths (§7: wider digests in the stages
    /// filled first cut overall false positives). Overrides `digest_bits`
    /// for matching when set; `digest_bits` still drives the memory model
    /// as the nominal width.
    pub digest_bits_per_stage: Option<Vec<u8>>,
    /// Version-number width in bits (paper default 6 after reuse).
    pub version_bits: u8,
    /// Whether ConnTable stores versions or direct DIPs.
    pub mapping: ConnMapping,
    /// Enable the version-reuse optimisation (§4.2, Fig 15).
    pub version_reuse: bool,
    /// TransitTable bloom filter size in bytes (paper default 256).
    pub transit_bytes: usize,
    /// TransitTable hash functions.
    pub transit_hashes: usize,
    /// Set to zero to disable the TransitTable entirely — the paper's
    /// "SilkRoad without TransitTable" ablation in Fig 16/17.
    pub transit_enabled: bool,
    /// Learning filter geometry (capacity + timeout; Fig 18 sweeps the
    /// timeout between 500 µs and 5 ms).
    pub learning: LearningFilterConfig,
    /// Switch CPU insertion model (paper: 200 K insertions/s).
    pub cpu: SwitchCpuConfig,
    /// Extra latency added to a software-redirected SYN (digest false
    /// positive repair, "a few milliseconds").
    pub syn_redirect_delay: Duration,
    /// Idle timeout after which the control plane expires a connection
    /// entry that was never explicitly closed.
    pub idle_timeout: Duration,
    /// RNG seed for all hash functions in this switch.
    pub seed: u64,
}

impl Default for SilkRoadConfig {
    fn default() -> Self {
        SilkRoadConfig {
            conn_capacity: 1_000_000,
            conn_stages: 4,
            digest_bits: 16,
            digest_bits_per_stage: None,
            version_bits: 6,
            mapping: ConnMapping::Version,
            version_reuse: true,
            transit_bytes: 256,
            transit_hashes: 4,
            transit_enabled: true,
            learning: LearningFilterConfig::default(),
            cpu: SwitchCpuConfig::default(),
            syn_redirect_delay: Duration::from_millis(2),
            idle_timeout: Duration::from_secs(120),
            seed: 0x51_1c_0a_d0,
        }
    }
}

impl SilkRoadConfig {
    /// A small configuration for unit tests and doc examples: tiny tables,
    /// fast CPU, everything else as the paper.
    pub fn small_test() -> SilkRoadConfig {
        SilkRoadConfig {
            conn_capacity: 4_096,
            ..Default::default()
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), TypeError> {
        if !(8..=32).contains(&self.digest_bits) {
            return Err(TypeError::OutOfRange {
                what: "digest_bits",
                constraint: "8..=32",
                got: self.digest_bits as u64,
            });
        }
        if let Some(bits) = &self.digest_bits_per_stage {
            for &b in bits {
                if !(8..=32).contains(&b) {
                    return Err(TypeError::OutOfRange {
                        what: "digest_bits_per_stage",
                        constraint: "8..=32",
                        got: b as u64,
                    });
                }
            }
            if bits.is_empty() {
                return Err(TypeError::OutOfRange {
                    what: "digest_bits_per_stage",
                    constraint: "non-empty",
                    got: 0,
                });
            }
        }
        if !(1..=16).contains(&self.version_bits) {
            return Err(TypeError::OutOfRange {
                what: "version_bits",
                constraint: "1..=16",
                got: self.version_bits as u64,
            });
        }
        if self.conn_stages < 2 {
            return Err(TypeError::OutOfRange {
                what: "conn_stages",
                constraint: "2..",
                got: self.conn_stages as u64,
            });
        }
        if self.conn_capacity == 0 {
            return Err(TypeError::OutOfRange {
                what: "conn_capacity",
                constraint: "1..",
                got: 0,
            });
        }
        Ok(())
    }

    /// Number of versions in the per-VIP ring.
    pub fn version_ring_size(&self) -> u32 {
        1u32 << self.version_bits.min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SilkRoadConfig::default();
        assert_eq!(c.digest_bits, 16);
        assert_eq!(c.version_bits, 6);
        assert_eq!(c.version_ring_size(), 64);
        assert_eq!(c.transit_bytes, 256);
        assert_eq!(c.cpu.insertions_per_sec, 200_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn per_stage_digest_validation() {
        let mut c = SilkRoadConfig {
            digest_bits_per_stage: Some(vec![24, 16, 12, 12]),
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        c.digest_bits_per_stage = Some(vec![4]);
        assert!(c.validate().is_err());
        c.digest_bits_per_stage = Some(vec![]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_widths() {
        let bad = [
            SilkRoadConfig {
                digest_bits: 4,
                ..Default::default()
            },
            SilkRoadConfig {
                version_bits: 0,
                ..Default::default()
            },
            SilkRoadConfig {
                conn_stages: 1,
                ..Default::default()
            },
            SilkRoadConfig {
                conn_capacity: 0,
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
