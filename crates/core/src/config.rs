//! SilkRoad switch configuration.

use sr_asic::{LearningFilterConfig, SwitchCpuConfig};
use sr_types::{Duration, TypeError};

/// How ConnTable action data identifies the destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnMapping {
    /// Store a DIP-pool version; the DIP is re-derived by hashing the
    /// 5-tuple over the immutable versioned pool (the paper's design,
    /// 6 bits of action data).
    Version,
    /// Store the DIP directly (the §4.2 fallback for few/long-lived
    /// connections; larger action data, no DIPPoolTable indirection).
    DirectDip,
}

/// Full configuration of a [`crate::SilkRoadSwitch`].
#[derive(Clone, Debug)]
pub struct SilkRoadConfig {
    /// Provisioned ConnTable capacity (entries).
    pub conn_capacity: usize,
    /// Pipeline stages ConnTable spans (each with its own hash function —
    /// also the relocation headroom for digest collisions).
    pub conn_stages: usize,
    /// Digest width in bits (paper default 16; §6.1 also evaluates 24).
    pub digest_bits: u8,
    /// Optional per-stage digest widths (§7: wider digests in the stages
    /// filled first cut overall false positives). Overrides `digest_bits`
    /// for matching when set; `digest_bits` still drives the memory model
    /// as the nominal width.
    pub digest_bits_per_stage: Option<Vec<u8>>,
    /// Version-number width in bits (paper default 6 after reuse).
    pub version_bits: u8,
    /// Whether ConnTable stores versions or direct DIPs.
    pub mapping: ConnMapping,
    /// Enable the version-reuse optimisation (§4.2, Fig 15).
    pub version_reuse: bool,
    /// TransitTable bloom filter size in bytes (paper default 256).
    pub transit_bytes: usize,
    /// TransitTable hash functions.
    pub transit_hashes: usize,
    /// Set to zero to disable the TransitTable entirely — the paper's
    /// "SilkRoad without TransitTable" ablation in Fig 16/17.
    pub transit_enabled: bool,
    /// Learning filter geometry (capacity + timeout; Fig 18 sweeps the
    /// timeout between 500 µs and 5 ms).
    pub learning: LearningFilterConfig,
    /// Switch CPU insertion model (paper: 200 K insertions/s).
    pub cpu: SwitchCpuConfig,
    /// Extra latency added to a software-redirected SYN (digest false
    /// positive repair, "a few milliseconds").
    pub syn_redirect_delay: Duration,
    /// Idle timeout after which the control plane expires a connection
    /// entry that was never explicitly closed.
    pub idle_timeout: Duration,
    /// RNG seed for all hash functions in this switch.
    pub seed: u64,
    /// Route installs through the legacy per-packet pipeline (re-hash the
    /// key on the switch CPU instead of reusing the packet-time hashes).
    /// Decisions and table state are bit-identical either way; the churn
    /// benchmark flips this on for its paired pre-change baseline arm.
    pub legacy_setup: bool,
}

impl Default for SilkRoadConfig {
    fn default() -> Self {
        SilkRoadConfig {
            conn_capacity: 1_000_000,
            conn_stages: 4,
            digest_bits: 16,
            digest_bits_per_stage: None,
            version_bits: 6,
            mapping: ConnMapping::Version,
            version_reuse: true,
            transit_bytes: 256,
            transit_hashes: 4,
            transit_enabled: true,
            learning: LearningFilterConfig::default(),
            cpu: SwitchCpuConfig::default(),
            syn_redirect_delay: Duration::from_millis(2),
            idle_timeout: Duration::from_secs(120),
            seed: 0x51_1c_0a_d0,
            legacy_setup: false,
        }
    }
}

impl SilkRoadConfig {
    /// A small configuration for unit tests and doc examples: tiny tables,
    /// fast CPU, everything else as the paper.
    pub fn small_test() -> SilkRoadConfig {
        SilkRoadConfig {
            conn_capacity: 4_096,
            ..Default::default()
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), TypeError> {
        if !(8..=32).contains(&self.digest_bits) {
            return Err(TypeError::OutOfRange {
                what: "digest_bits",
                constraint: "8..=32",
                got: self.digest_bits as u64,
            });
        }
        if let Some(bits) = &self.digest_bits_per_stage {
            for &b in bits {
                if !(8..=32).contains(&b) {
                    return Err(TypeError::OutOfRange {
                        what: "digest_bits_per_stage",
                        constraint: "8..=32",
                        got: b as u64,
                    });
                }
            }
            if bits.is_empty() {
                return Err(TypeError::OutOfRange {
                    what: "digest_bits_per_stage",
                    constraint: "non-empty",
                    got: 0,
                });
            }
        }
        if !(1..=16).contains(&self.version_bits) {
            return Err(TypeError::OutOfRange {
                what: "version_bits",
                constraint: "1..=16",
                got: self.version_bits as u64,
            });
        }
        if self.conn_stages < 2 {
            return Err(TypeError::OutOfRange {
                what: "conn_stages",
                constraint: "2..",
                got: self.conn_stages as u64,
            });
        }
        if self.conn_capacity == 0 {
            return Err(TypeError::OutOfRange {
                what: "conn_capacity",
                constraint: "1..",
                got: 0,
            });
        }
        Ok(())
    }

    /// Number of versions in the per-VIP ring.
    pub fn version_ring_size(&self) -> u32 {
        1u32 << self.version_bits.min(16)
    }

    /// The physical pipeline layout this configuration provisions, as the
    /// layout verifier ([`sr_asic::check`]) sees it.
    ///
    /// The ConnTable's placement span auto-widens beyond `conn_stages` when
    /// its SRAM demand cannot pack into that many stages: an RMT compiler
    /// spreads one logical table across extra physical stages while the
    /// logical hash ways stay fixed, so a wider span changes placement, not
    /// behaviour. The span is capped at the chip's stage count — a table
    /// that still overflows per-stage SRAM at full width is genuinely
    /// unplaceable and the verifier rejects it.
    pub fn pipeline_program(&self) -> sr_asic::PipelineProgram {
        let chip = sr_asic::ChipSpec::tofino_class();
        let entry_bits = match self.mapping {
            // Mirrors `ConnTable::new`'s on-chip entry layouts.
            ConnMapping::Version => self.digest_bits as u32 + self.version_bits as u32 + 6,
            ConnMapping::DirectDip => self.digest_bits as u32 + 144 + 6,
        };
        let sram = sr_asic::SramSpec { entry_bits };
        let mut span = self.conn_stages as u32;
        loop {
            let per_stage = (self.conn_capacity as u64).div_ceil(span as u64);
            let blocks = sram
                .words_for(per_stage)
                .div_ceil(chip.sram_block_words as u64);
            if blocks <= chip.sram_blocks_per_stage as u64 || span >= chip.stages {
                break;
            }
            span += 1;
        }
        // VIP/DIP-pool provisioning uses the paper-scale reference sizes;
        // both tables are placement-trivial next to the ConnTable.
        let mut prog = sr_asic::PipelineProgram::silkroad(
            self.conn_capacity as u64,
            span,
            self.digest_bits as u32,
            self.version_bits as u32,
            1_000,
            4_000,
            144,
            self.transit_bytes as u64,
            self.transit_hashes as u32,
        );
        if self.mapping == ConnMapping::DirectDip {
            prog.tables[0].action_bits = 144;
        }
        if !self.transit_enabled {
            // The Fig 16/17 ablation: no bloom filter, and the miss path
            // chains ConnTable straight into the VIP lookup.
            prog.registers.clear();
            prog.deps = vec![
                sr_asic::TableDependency {
                    before: "ConnTable",
                    after: "VIPTable",
                },
                sr_asic::TableDependency {
                    before: "VIPTable",
                    after: "DIPPoolTable",
                },
            ];
        }
        prog
    }

    /// Run the pipeline-layout verifier over [`SilkRoadConfig::pipeline_program`]
    /// on the Tofino-class chip. [`crate::SilkRoadSwitch::new`] refuses
    /// configurations whose report has errors.
    pub fn check_layout(&self) -> sr_asic::CheckReport {
        self.pipeline_program()
            .check(&sr_asic::ChipSpec::tofino_class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SilkRoadConfig::default();
        assert_eq!(c.digest_bits, 16);
        assert_eq!(c.version_bits, 6);
        assert_eq!(c.version_ring_size(), 64);
        assert_eq!(c.transit_bytes, 256);
        assert_eq!(c.cpu.insertions_per_sec, 200_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn per_stage_digest_validation() {
        let mut c = SilkRoadConfig {
            digest_bits_per_stage: Some(vec![24, 16, 12, 12]),
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        c.digest_bits_per_stage = Some(vec![4]);
        assert!(c.validate().is_err());
        c.digest_bits_per_stage = Some(vec![]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_layout_is_placeable() {
        let report = SilkRoadConfig::default().check_layout();
        assert!(report.is_placeable(), "{}", report.render());
    }

    #[test]
    fn big_conn_table_widens_span_and_stays_placeable() {
        // The Fig 13 cluster-scale sims provision up to 12M connections;
        // that cannot pack into 4 stages, so the placement span widens.
        let cfg = SilkRoadConfig {
            conn_capacity: 12_000_000,
            ..Default::default()
        };
        let prog = cfg.pipeline_program();
        assert!(prog.tables[0].stages > 4, "{:?}", prog.tables[0]);
        let report = cfg.check_layout();
        assert!(report.is_placeable(), "{}", report.render());
    }

    #[test]
    fn absurd_conn_table_is_refused() {
        // 80M connections overflow per-stage SRAM even spanning the whole
        // pipeline — srcheck must reject the layout.
        let cfg = SilkRoadConfig {
            conn_capacity: 80_000_000,
            ..Default::default()
        };
        let report = cfg.check_layout();
        assert!(!report.is_placeable());
    }

    #[test]
    fn transit_ablation_drops_register_from_layout() {
        let cfg = SilkRoadConfig {
            transit_enabled: false,
            ..Default::default()
        };
        let prog = cfg.pipeline_program();
        assert!(prog.registers.is_empty());
        let report = cfg.check_layout();
        assert!(report.is_placeable(), "{}", report.render());
    }

    #[test]
    fn validation_rejects_bad_widths() {
        let bad = [
            SilkRoadConfig {
                digest_bits: 4,
                ..Default::default()
            },
            SilkRoadConfig {
                version_bits: 0,
                ..Default::default()
            },
            SilkRoadConfig {
                conn_stages: 1,
                ..Default::default()
            },
            SilkRoadConfig {
                conn_capacity: 0,
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
