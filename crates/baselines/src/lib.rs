//! Baseline load balancers the paper compares SilkRoad against.
//!
//! * [`slb`] — a software load balancer in the Ananta/Maglev mould (§2.2):
//!   ConnTable and VIPTable both in x86 software. PCC is easy (synchronous
//!   table updates) but every packet costs CPU, latency, and money.
//! * [`duet`] — Duet (§2.3, §3.2): VIPTable in the switch ASIC via ECMP,
//!   ConnTable only in SLBs. During DIP-pool updates the VIP's traffic is
//!   redirected to SLBs; the dilemma of *when to migrate back* produces
//!   either high SLB load or PCC violations (Fig 5, 16, 17).
//! * [`ecmp`] — stateless ECMP hashing, the strawman lower bound.
//! * [`cost`] — the capex/power model behind Fig 13 and the §6.1
//!   "1/500 power, 1/250 cost" claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod duet;
pub mod ecmp;
pub mod slb;

pub use cost::{CostModel, Deployment};
pub use duet::{DuetConfig, DuetLb, MigrationPolicy};
pub use ecmp::EcmpLb;
pub use slb::{SlbConfig, SoftwareLb};
