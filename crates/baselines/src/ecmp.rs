//! Stateless ECMP load balancing — the strawman.
//!
//! No connection state anywhere: every packet hashes over the current pool.
//! Perfectly fast, but *every* pool change re-shuffles a fraction of live
//! connections. This is the lower bound the paper's §2.3 argument starts
//! from.

use sr_algo::ConnStateDesign;
use sr_hash::{ecmp_select, HashFn};
use sr_types::{Addr, AddrFamily, Dip, PacketMeta, TypeError, Vip};
use std::collections::HashMap;

/// The stateless ECMP balancer.
pub struct EcmpLb {
    hash: HashFn,
    vips: HashMap<Addr, Vec<Dip>>,
    /// Packets processed.
    pub packets: u64,
}

impl EcmpLb {
    /// Build with a hash seed.
    pub fn new(seed: u64) -> EcmpLb {
        EcmpLb {
            hash: HashFn::new(seed),
            vips: HashMap::new(),
            packets: 0,
        }
    }

    /// Register a VIP.
    pub fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        if self.vips.contains_key(&vip.0) {
            return Err(TypeError::InvalidState {
                what: "VIP already registered",
            });
        }
        self.vips.insert(vip.0, dips);
        Ok(())
    }

    /// Replace a VIP's pool (instantaneous — that is the problem).
    pub fn update_pool(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        match self.vips.get_mut(&vip.0) {
            Some(p) => {
                *p = dips;
                Ok(())
            }
            None => Err(TypeError::NotFound { what: "VIP" }),
        }
    }

    /// Process one packet.
    pub fn process_packet(&mut self, pkt: &PacketMeta) -> Option<Dip> {
        self.packets += 1;
        let pool = self.vips.get(&pkt.tuple.dst)?;
        ecmp_select(self.hash.hash(pkt.tuple.tuple_key().as_slice()), pool.len()).map(|i| pool[i])
    }

    /// The algorithm-boundary entry layout: ECMP keeps no per-connection
    /// state anywhere.
    pub fn conn_design() -> ConnStateDesign {
        ConnStateDesign::Stateless
    }

    /// Per-connection state bytes — zero, by [`sr_algo::cost`]'s shared
    /// formula (the same code path the memory figure and the comparison
    /// matrix use).
    pub fn state_bytes(&self, family: AddrFamily) -> u64 {
        u64::from(sr_algo::conn_entry_bits(Self::conn_design(), family))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::FiveTuple;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(p: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, p), Addr::v4(20, 0, 0, 1, 80))
    }

    #[test]
    fn deterministic_mapping() {
        let mut e = EcmpLb::new(1);
        e.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        let a = e.process_packet(&PacketMeta::syn(conn(1)));
        assert!(a.is_some());
        assert_eq!(e.process_packet(&PacketMeta::data(conn(1), 99)), a);
    }

    #[test]
    fn pool_change_moves_connections() {
        let mut e = EcmpLb::new(1);
        e.add_vip(vip(), vec![dip(1), dip(2), dip(3), dip(4)])
            .unwrap();
        let before: Vec<Dip> = (0..1000)
            .map(|p| e.process_packet(&PacketMeta::syn(conn(p))).unwrap())
            .collect();
        e.update_pool(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        let moved = (0..1000)
            .filter(|p| {
                e.process_packet(&PacketMeta::data(conn(*p), 1)).unwrap() != before[*p as usize]
            })
            .count();
        // Far more than the 1/4 a consistent scheme would move.
        assert!(moved > 250, "moved {moved}");
    }

    #[test]
    fn unknown_vip_none() {
        let mut e = EcmpLb::new(1);
        assert!(e.process_packet(&PacketMeta::syn(conn(1))).is_none());
        assert!(e.update_pool(vip(), vec![]).is_err());
    }
}
