//! Capital and power cost model (§6.1, Fig 13).
//!
//! "To support the state-of-the-art performance of 12 Mpps for 52-byte
//! packets, a typical SLB with Intel Xeon Processor E5-2660 costs around
//! 200 Watt and 3K USD. By contrast, SilkRoad with 6.4 Tbps ASIC can
//! achieve about 10 Gpps with 52-byte packets, consuming around 300 Watt
//! and 10K USD. So processing the same amount of traffic in ASIC consumes
//! about 1/500 of the power and 1/250 of the capital cost."

/// Unit costs and capacities of each platform.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// SLB server power draw, watts.
    pub slb_watts: f64,
    /// SLB server capital cost, USD.
    pub slb_usd: f64,
    /// SLB packet throughput, packets/s (52-byte packets).
    pub slb_pps: f64,
    /// SLB NIC throughput, bits/s.
    pub slb_bps: f64,
    /// SilkRoad switch power draw, watts.
    pub silkroad_watts: f64,
    /// SilkRoad switch capital cost, USD.
    pub silkroad_usd: f64,
    /// SilkRoad packet throughput, packets/s.
    pub silkroad_pps: f64,
    /// SilkRoad bit throughput, bits/s.
    pub silkroad_bps: f64,
    /// Connections one SilkRoad holds in SRAM (the paper assumes 10 M).
    pub silkroad_conns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            slb_watts: 200.0,
            slb_usd: 3_000.0,
            slb_pps: 12e6,
            slb_bps: 10e9,
            silkroad_watts: 300.0,
            silkroad_usd: 10_000.0,
            silkroad_pps: 10e9,
            silkroad_bps: 6.4e12,
            silkroad_conns: 10e6,
        }
    }
}

/// A sized deployment for one load point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deployment {
    /// SLB servers needed.
    pub slbs: u64,
    /// SilkRoad switches needed.
    pub silkroads: u64,
}

impl Deployment {
    /// Fig 13's y-axis: SLBs replaced per SilkRoad.
    pub fn replacement_ratio(&self) -> f64 {
        self.slbs as f64 / self.silkroads.max(1) as f64
    }
}

impl CostModel {
    /// Units needed for a load of `pps` packets/s, `bps` bits/s, and
    /// `conns` simultaneous connections.
    pub fn size(&self, pps: f64, bps: f64, conns: f64) -> Deployment {
        let slbs = (pps / self.slb_pps).max(bps / self.slb_bps).ceil().max(1.0) as u64;
        let silkroads = (conns / self.silkroad_conns)
            .max(pps / self.silkroad_pps)
            .max(bps / self.silkroad_bps)
            .ceil()
            .max(1.0) as u64;
        Deployment { slbs, silkroads }
    }

    /// Power per packet/s ratio SLB : SilkRoad (the paper's ≈500×).
    pub fn power_saving_factor(&self) -> f64 {
        (self.slb_watts / self.slb_pps) / (self.silkroad_watts / self.silkroad_pps)
    }

    /// Capital cost per packet/s ratio SLB : SilkRoad (the paper's ≈250×).
    pub fn capex_saving_factor(&self) -> f64 {
        (self.slb_usd / self.slb_pps) / (self.silkroad_usd / self.silkroad_pps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_saving_factors() {
        let m = CostModel::default();
        let p = m.power_saving_factor();
        let c = m.capex_saving_factor();
        assert!((450.0..650.0).contains(&p), "power factor {p}");
        assert!((200.0..300.0).contains(&c), "capex factor {c}");
    }

    #[test]
    fn sizing_follows_binding_constraint() {
        let m = CostModel::default();
        // Packet-bound: 24 Mpps needs 2 SLBs, 1 SilkRoad.
        let d = m.size(24e6, 0.0, 1e6);
        assert_eq!(
            d,
            Deployment {
                slbs: 2,
                silkroads: 1
            }
        );
        // Connection-bound: 15M conns need 2 SilkRoads.
        let d = m.size(1e6, 0.0, 15e6);
        assert_eq!(d.silkroads, 2);
        // Bit-bound SLBs: 15 Tbps needs 1500 SLBs (§2.2) but 3 SilkRoads.
        let d = m.size(0.0, 15e12, 1e6);
        assert_eq!(d.slbs, 1500);
        assert_eq!(d.silkroads, 3);
        assert!((d.replacement_ratio() - 500.0).abs() < 1.0);
    }

    #[test]
    fn minimum_one_unit() {
        let m = CostModel::default();
        assert_eq!(
            m.size(0.0, 0.0, 0.0),
            Deployment {
                slbs: 1,
                silkroads: 1
            }
        );
    }
}
