//! Software load balancer (Ananta / Maglev style, §2.2).
//!
//! Both tables live in server software: ConnTable is a hash map, VIPTable
//! uses Maglev consistent hashing. Updates are trivially PCC-safe — the
//! software locks VIPTable, buffers new connections, swaps the pool, and
//! releases (§2.1) — which the model reflects by performing the swap
//! synchronously. What the SLB pays instead is throughput (12 Mpps per
//! 8-core server) and latency (50 µs – 1 ms), which the load accounting
//! here feeds into Fig 5a and Fig 13.

use sr_algo::ConnStateDesign;
use sr_hash::maglev::MaglevTable;
use sr_types::{Addr, AddrFamily, Dip, Nanos, PacketMeta, TypeError, Vip};
use std::collections::HashMap;

/// SLB configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlbConfig {
    /// Maglev lookup-table size per VIP (prime recommended).
    pub maglev_table_size: usize,
    /// Packet throughput of one SLB server (the paper: 12 Mpps).
    pub server_mpps: f64,
    /// Bit throughput of one SLB server's NIC (the paper: 10 Gbps).
    pub server_gbps: f64,
    /// Hash seed.
    pub seed: u64,
}

impl Default for SlbConfig {
    fn default() -> Self {
        SlbConfig {
            maglev_table_size: 4099,
            server_mpps: 12.0,
            server_gbps: 10.0,
            seed: 0x51b,
        }
    }
}

struct VipPool {
    dips: Vec<Dip>,
    maglev: MaglevTable,
}

/// Per-instance counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlbStats {
    /// Packets processed.
    pub packets: u64,
    /// Bytes processed.
    pub bytes: u64,
    /// Live connection entries.
    pub connections: u64,
    /// Pool updates applied.
    pub updates: u64,
}

/// The software load balancer.
pub struct SoftwareLb {
    cfg: SlbConfig,
    vips: HashMap<Addr, VipPool>,
    conn_table: HashMap<Box<[u8]>, Dip>,
    stats: SlbStats,
}

impl SoftwareLb {
    /// Build an SLB.
    pub fn new(cfg: SlbConfig) -> SoftwareLb {
        SoftwareLb {
            cfg,
            vips: HashMap::new(),
            conn_table: HashMap::new(),
            stats: SlbStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &SlbStats {
        &self.stats
    }

    fn rebuild(&mut self, vip: Vip, dips: Vec<Dip>) {
        let keys: Vec<Vec<u8>> = dips
            .iter()
            .map(|d| {
                let mut k = Vec::new();
                d.0.encode_into(&mut k);
                k
            })
            .collect();
        let maglev = MaglevTable::build(&keys, self.cfg.maglev_table_size, self.cfg.seed);
        self.vips.insert(vip.0, VipPool { dips, maglev });
    }

    /// Register a VIP.
    pub fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        if self.vips.contains_key(&vip.0) {
            return Err(TypeError::InvalidState {
                what: "VIP already registered",
            });
        }
        self.rebuild(vip, dips);
        Ok(())
    }

    /// Current DIPs of a VIP.
    pub fn dips(&self, vip: Vip) -> Option<&[Dip]> {
        self.vips.get(&vip.0).map(|p| p.dips.as_slice())
    }

    /// Apply a pool change. Synchronous and PCC-safe: established
    /// connections keep their ConnTable entries, only new connections see
    /// the new Maglev table.
    pub fn update_pool(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        if !self.vips.contains_key(&vip.0) {
            return Err(TypeError::NotFound { what: "VIP" });
        }
        self.rebuild(vip, dips);
        self.stats.updates += 1;
        Ok(())
    }

    /// Process one packet; `_now` kept for interface symmetry (the SLB has
    /// no asynchronous control plane).
    pub fn process_packet(&mut self, pkt: &PacketMeta, _now: Nanos) -> Option<Dip> {
        self.stats.packets += 1;
        self.stats.bytes += pkt.len as u64;
        let key = pkt.tuple.tuple_key();
        if let Some(d) = self.conn_table.get(key.as_slice()) {
            return Some(*d);
        }
        let pool = self.vips.get(&pkt.tuple.dst)?;
        let idx = pool.maglev.select(key.as_slice())?;
        let dip = pool.dips[idx];
        self.conn_table.insert(key.as_slice().into(), dip);
        self.stats.connections += 1;
        Some(dip)
    }

    /// Drop a connection's state.
    pub fn close_connection(&mut self, key: &[u8]) {
        if self.conn_table.remove(key).is_some() {
            self.stats.connections = self.stats.connections.saturating_sub(1);
        }
    }

    /// Whether the SLB currently has state for `key`.
    pub fn has_connection(&self, key: &[u8]) -> bool {
        self.conn_table.contains_key(key)
    }

    /// The algorithm-boundary entry layout: full 5-tuple key + full DIP
    /// action, in server DRAM.
    pub fn conn_design() -> ConnStateDesign {
        ConnStateDesign::NaiveExact
    }

    /// Connection-state bytes under the shared [`sr_algo::cost`] formula
    /// — the same code path as the memory figure and the comparison
    /// matrix. (DRAM, so entries are byte-rounded, not SRAM word-packed.)
    pub fn state_bytes(&self, family: AddrFamily) -> u64 {
        let bits = u64::from(sr_algo::conn_entry_bits(Self::conn_design(), family));
        (self.stats.connections * bits).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::FiveTuple;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(p: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, p), Addr::v4(20, 0, 0, 1, 80))
    }

    fn slb() -> SoftwareLb {
        let mut s = SoftwareLb::new(SlbConfig::default());
        s.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        s
    }

    #[test]
    fn connection_stickiness() {
        let mut s = slb();
        let d1 = s
            .process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO)
            .unwrap();
        for _ in 0..10 {
            let d = s
                .process_packet(&PacketMeta::data(conn(1), 100), Nanos::ZERO)
                .unwrap();
            assert_eq!(d, d1);
        }
        assert_eq!(s.stats().connections, 1);
        assert_eq!(s.stats().packets, 11);
    }

    #[test]
    fn pcc_across_updates() {
        let mut s = slb();
        let assigned: Vec<(u16, Dip)> = (0..200)
            .map(|p| {
                (
                    p,
                    s.process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO)
                        .unwrap(),
                )
            })
            .collect();
        s.update_pool(vip(), vec![dip(1), dip(3)]).unwrap();
        for (p, d) in assigned {
            let after = s
                .process_packet(&PacketMeta::data(conn(p), 100), Nanos::ZERO)
                .unwrap();
            assert_eq!(after, d, "SLB broke PCC for port {p}");
        }
    }

    #[test]
    fn new_connections_avoid_removed_dip() {
        let mut s = slb();
        s.update_pool(vip(), vec![dip(1), dip(3)]).unwrap();
        for p in 1000..1200 {
            let d = s
                .process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO)
                .unwrap();
            assert_ne!(d, dip(2));
        }
    }

    #[test]
    fn close_frees_state() {
        let mut s = slb();
        s.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        let key = conn(1).key_bytes();
        assert!(s.has_connection(&key));
        s.close_connection(&key);
        assert!(!s.has_connection(&key));
        assert_eq!(s.stats().connections, 0);
    }

    #[test]
    fn unknown_vip_unhandled() {
        let mut s = SoftwareLb::new(SlbConfig::default());
        assert_eq!(
            s.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO),
            None
        );
    }

    #[test]
    fn state_bytes_use_the_shared_cost_model() {
        let mut s = slb();
        assert_eq!(s.state_bytes(AddrFamily::V4), 0);
        for p in 0..8 {
            s.process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO);
        }
        // 8 naive-exact V4 entries: the same bits sr_algo::cost charges.
        let bits = u64::from(sr_algo::conn_entry_bits(
            SoftwareLb::conn_design(),
            AddrFamily::V4,
        ));
        assert_eq!(s.state_bytes(AddrFamily::V4), (8 * bits).div_ceil(8));
    }

    #[test]
    fn update_unknown_vip_rejected() {
        let mut s = slb();
        assert!(s
            .update_pool(Vip(Addr::v4(9, 9, 9, 9, 80)), vec![dip(1)])
            .is_err());
        assert!(s.add_vip(vip(), vec![dip(1)]).is_err());
    }
}
