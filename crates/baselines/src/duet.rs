//! Duet (§2.3, §3.2): VIPTable in the switch, ConnTable in SLBs.
//!
//! Steady state: the switch maps a VIP's packets to DIPs with stateless
//! ECMP hashing — fast, but memoryless. When a VIP's DIP pool changes, all
//! of its traffic is *redirected* to SLBs, which build a ConnTable and apply
//! the update PCC-safely. The open question Duet never answers cleanly is
//! **when to migrate the VIP back to the switch**:
//!
//! * migrate early (periodic timer) → remaining old connections re-hash
//!   over the new pool at the switch and break (Fig 5b, 16, 17);
//! * migrate late / wait for old connections to die → SLBs keep carrying
//!   the traffic (Fig 5a: up to 93.8 % of volume at 50 updates/min).
//!
//! Model notes: the redirect-in direction is made lossless, reflecting the
//! paper's footnote that the SLB warms its ConnTable before the update
//! applies — an *old* connection missing the SLB table (first packet seen
//! mid-redirect, non-SYN) is assigned by the *pre-update* switch pool, a
//! *new* connection (SYN) by the current pool.

use sr_algo::ConnStateDesign;
use sr_hash::{ecmp_select, HashFn};
use sr_types::{Addr, AddrFamily, Dip, Duration, Nanos, PacketMeta, TypeError, Vip};
use std::collections::HashMap;

/// How a redirected VIP returns to the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Migrate every redirected VIP back on a fixed period (the Duet paper
    /// uses 10 minutes; Fig 5 also evaluates 1 minute).
    Periodic(Duration),
    /// Only migrate a VIP once every live connection would map identically
    /// at the switch — zero PCC violations, maximal SLB load
    /// ("Migrate-PCC" in Fig 5).
    WaitPcc,
}

/// Duet configuration.
#[derive(Clone, Copy, Debug)]
pub struct DuetConfig {
    /// Migrate-back policy.
    pub policy: MigrationPolicy,
    /// Hash seed (shared by switch ECMP and SLB).
    pub seed: u64,
}

impl Default for DuetConfig {
    fn default() -> Self {
        DuetConfig {
            policy: MigrationPolicy::Periodic(Duration::from_mins(10)),
            seed: 0xd0e7,
        }
    }
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DuetStats {
    /// Packets handled at the switch.
    pub switch_packets: u64,
    /// Bytes handled at the switch.
    pub switch_bytes: u64,
    /// Packets handled at SLBs (redirected VIPs).
    pub slb_packets: u64,
    /// Bytes handled at SLBs.
    pub slb_bytes: u64,
    /// VIP redirects started.
    pub redirects: u64,
    /// VIP migrations back to the switch.
    pub migrations: u64,
    /// Pool updates applied.
    pub updates: u64,
}

struct DuetVip {
    /// The authoritative (latest) pool — what SLBs serve.
    pool: Vec<Dip>,
    /// The pool programmed into the switch ECMP table (stale while
    /// redirected).
    switch_pool: Vec<Dip>,
    redirected: bool,
    /// SLB ConnTable for this VIP (only meaningful while redirected).
    conns: HashMap<Box<[u8]>, Dip>,
}

/// The Duet load balancer (one switch + its SLB tier).
pub struct DuetLb {
    cfg: DuetConfig,
    hash: HashFn,
    vips: HashMap<Addr, DuetVip>,
    /// Next periodic migration boundary.
    next_migration: Nanos,
    stats: DuetStats,
}

impl DuetLb {
    /// Build a Duet instance.
    pub fn new(cfg: DuetConfig) -> DuetLb {
        DuetLb {
            hash: HashFn::new(cfg.seed),
            next_migration: match cfg.policy {
                MigrationPolicy::Periodic(p) => Nanos::ZERO + p,
                MigrationPolicy::WaitPcc => Nanos::MAX,
            },
            cfg,
            vips: HashMap::new(),
            stats: DuetStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &DuetStats {
        &self.stats
    }

    /// Register a VIP.
    pub fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        if self.vips.contains_key(&vip.0) {
            return Err(TypeError::InvalidState {
                what: "VIP already registered",
            });
        }
        self.vips.insert(
            vip.0,
            DuetVip {
                switch_pool: dips.clone(),
                pool: dips,
                redirected: false,
                conns: HashMap::new(),
            },
        );
        Ok(())
    }

    /// Whether a VIP is currently served by SLBs.
    pub fn is_redirected(&self, vip: Vip) -> bool {
        self.vips.get(&vip.0).map(|v| v.redirected).unwrap_or(false)
    }

    /// The latest pool of a VIP.
    pub fn dips(&self, vip: Vip) -> Option<&[Dip]> {
        self.vips.get(&vip.0).map(|v| v.pool.as_slice())
    }

    fn select(hash: &HashFn, key: &[u8], pool: &[Dip]) -> Option<Dip> {
        ecmp_select(hash.hash(key), pool.len()).map(|i| pool[i])
    }

    /// Apply a pool change: updates the authoritative pool and redirects the
    /// VIP to SLBs if it is not already there.
    pub fn update_pool(&mut self, vip: Vip, dips: Vec<Dip>, _now: Nanos) -> Result<(), TypeError> {
        let v = self
            .vips
            .get_mut(&vip.0)
            .ok_or(TypeError::NotFound { what: "VIP" })?;
        v.pool = dips;
        self.stats.updates += 1;
        if !v.redirected {
            v.redirected = true;
            self.stats.redirects += 1;
        }
        Ok(())
    }

    /// Process one packet.
    pub fn process_packet(&mut self, pkt: &PacketMeta, _now: Nanos) -> Option<Dip> {
        let key = pkt.tuple.tuple_key();
        let v = self.vips.get_mut(&pkt.tuple.dst)?;
        if !v.redirected {
            self.stats.switch_packets += 1;
            self.stats.switch_bytes += pkt.len as u64;
            return Self::select(&self.hash, key.as_slice(), &v.switch_pool);
        }
        // SLB path.
        self.stats.slb_packets += 1;
        self.stats.slb_bytes += pkt.len as u64;
        if let Some(d) = v.conns.get(key.as_slice()) {
            return Some(*d);
        }
        // Miss: SYN ⇒ genuinely new (current pool); otherwise an old
        // connection the warm-up would have captured (pre-update pool).
        let pool = if pkt.flags.is_syn() {
            &v.pool
        } else {
            &v.switch_pool
        };
        let dip = Self::select(&self.hash, key.as_slice(), pool)?;
        v.conns.insert(key.as_slice().into(), dip);
        Some(dip)
    }

    /// Drop a connection's SLB state (flow ended).
    pub fn close_connection(&mut self, vip: Vip, key: &[u8]) {
        if let Some(v) = self.vips.get_mut(&vip.0) {
            v.conns.remove(key);
        }
    }

    /// The algorithm-boundary entry layout of the stateful half: redirected
    /// VIPs' connections live in SLB DRAM as full-key exact entries; the
    /// switch half is [`ConnStateDesign::Stateless`] ECMP.
    pub fn conn_design() -> ConnStateDesign {
        ConnStateDesign::NaiveExact
    }

    /// Connection-state bytes across all redirected VIPs, charged by the
    /// shared [`sr_algo::cost`] formula (the memory figure's code path).
    pub fn state_bytes(&self, family: AddrFamily) -> u64 {
        let bits = u64::from(sr_algo::conn_entry_bits(Self::conn_design(), family));
        let entries: u64 = self.vips.values().map(|v| v.conns.len() as u64).sum();
        (entries * bits).div_ceil(8)
    }

    /// Whether migrating `vip` back right now would break any live
    /// connection.
    fn migration_is_safe(hash: &HashFn, v: &DuetVip) -> bool {
        v.conns
            .iter()
            .all(|(k, d)| Self::select(hash, k, &v.pool) == Some(*d))
    }

    /// Force one VIP back to the switch immediately (used by external
    /// migrate-back policies with richer knowledge, e.g. the simulator's
    /// flow-level Migrate-PCC). Returns whether a migration happened.
    pub fn force_migrate(&mut self, vip: Vip) -> bool {
        match self.vips.get_mut(&vip.0) {
            Some(v) if v.redirected => {
                Self::migrate(v);
                self.stats.migrations += 1;
                true
            }
            _ => false,
        }
    }

    fn migrate(v: &mut DuetVip) {
        v.switch_pool = v.pool.clone();
        v.redirected = false;
        v.conns.clear();
    }

    /// Run the migrate-back policy. Call at (or after) every
    /// [`DuetLb::next_wakeup`] and whenever connections close (WaitPcc).
    /// Returns the VIPs that migrated back to the switch during this tick
    /// (their connections may now map differently).
    pub fn tick(&mut self, now: Nanos) -> Vec<Vip> {
        let mut migrated = Vec::new();
        match self.cfg.policy {
            MigrationPolicy::Periodic(p) => {
                if self.next_migration <= now {
                    for (addr, v) in self.vips.iter_mut() {
                        if v.redirected {
                            Self::migrate(v);
                            self.stats.migrations += 1;
                            migrated.push(Vip(*addr));
                        }
                    }
                    // Fast-forward to the first boundary after `now` (a
                    // per-boundary loop would crawl across idle gaps).
                    let periods = now.since(self.next_migration).div_duration(p) + 1;
                    self.next_migration += Duration(p.0 * periods);
                }
            }
            MigrationPolicy::WaitPcc => {
                for (addr, v) in self.vips.iter_mut() {
                    if v.redirected && Self::migration_is_safe(&self.hash, v) {
                        Self::migrate(v);
                        self.stats.migrations += 1;
                        migrated.push(Vip(*addr));
                    }
                }
            }
        }
        migrated
    }

    /// The next instant `tick` has scheduled work (periodic policy only).
    pub fn next_wakeup(&self) -> Option<Nanos> {
        match self.cfg.policy {
            MigrationPolicy::Periodic(_) => Some(self.next_migration),
            MigrationPolicy::WaitPcc => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::FiveTuple;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(p: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, p), Addr::v4(20, 0, 0, 1, 80))
    }

    fn duet(policy: MigrationPolicy) -> DuetLb {
        let mut d = DuetLb::new(DuetConfig {
            policy,
            seed: 0xd0e7,
        });
        d.add_vip(vip(), vec![dip(1), dip(2), dip(3), dip(4)])
            .unwrap();
        d
    }

    #[test]
    fn steady_state_runs_at_switch() {
        let mut d = duet(MigrationPolicy::Periodic(Duration::from_mins(10)));
        let a = d.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert!(a.is_some());
        assert_eq!(d.stats().switch_packets, 1);
        assert_eq!(d.stats().slb_packets, 0);
        // Stateless but deterministic.
        let b = d.process_packet(&PacketMeta::data(conn(1), 100), Nanos::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn update_redirects_to_slb() {
        let mut d = duet(MigrationPolicy::Periodic(Duration::from_mins(10)));
        d.update_pool(vip(), vec![dip(1), dip(2), dip(3)], Nanos::ZERO)
            .unwrap();
        assert!(d.is_redirected(vip()));
        d.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert_eq!(d.stats().slb_packets, 1);
        assert_eq!(d.stats().redirects, 1);
    }

    #[test]
    fn old_connections_keep_old_mapping_while_redirected() {
        let mut d = duet(MigrationPolicy::Periodic(Duration::from_mins(10)));
        // Old connection established at the switch.
        let before = d
            .process_packet(&PacketMeta::syn(conn(5)), Nanos::ZERO)
            .unwrap();
        // Update removes a DIP; VIP redirects.
        d.update_pool(vip(), vec![dip(2), dip(3), dip(4)], Nanos::from_secs(1))
            .unwrap();
        // Old connection's next (non-SYN) packet at the SLB: must keep its
        // pre-update DIP (warm-up semantics).
        let after = d
            .process_packet(&PacketMeta::data(conn(5), 100), Nanos::from_secs(1))
            .unwrap();
        assert_eq!(after, before);
    }

    #[test]
    fn periodic_migration_breaks_stale_connections() {
        let mut d = duet(MigrationPolicy::Periodic(Duration::from_mins(1)));
        // Many old connections at the switch.
        let assigned: Vec<(u16, Dip)> = (0..2000)
            .map(|p| {
                (
                    p,
                    d.process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO)
                        .unwrap(),
                )
            })
            .collect();
        // Remove a DIP; redirect; old conns keep mapping at SLB.
        d.update_pool(vip(), vec![dip(2), dip(3), dip(4)], Nanos::from_secs(5))
            .unwrap();
        for (p, dd) in &assigned {
            let at_slb = d
                .process_packet(&PacketMeta::data(conn(*p), 100), Nanos::from_secs(6))
                .unwrap();
            assert_eq!(at_slb, *dd);
        }
        // Timer fires: migrate back.
        d.tick(Nanos::from_mins(1));
        assert!(!d.is_redirected(vip()));
        assert_eq!(d.stats().migrations, 1);
        // Old connections re-hash over the new pool at the switch: many
        // must now map differently (the PCC violation Duet suffers).
        let broken = assigned
            .iter()
            .filter(|(p, dd)| {
                d.process_packet(&PacketMeta::data(conn(*p), 100), Nanos::from_mins(2))
                    .unwrap()
                    != *dd
            })
            .count();
        assert!(broken > 0, "expected some broken connections");
        // With 1 of 4 DIPs removed and hash-scaled ECMP, roughly 1/4 of
        // connections plus reshuffle noise move; definitely not all.
        assert!(broken < assigned.len());
    }

    #[test]
    fn wait_pcc_never_migrates_early() {
        let mut d = duet(MigrationPolicy::WaitPcc);
        let key5 = conn(5).key_bytes();
        let before = d
            .process_packet(&PacketMeta::syn(conn(5)), Nanos::ZERO)
            .unwrap();
        d.update_pool(vip(), vec![dip(2), dip(3), dip(4)], Nanos::from_secs(1))
            .unwrap();
        // Register the old connection at the SLB.
        let at_slb = d
            .process_packet(&PacketMeta::data(conn(5), 100), Nanos::from_secs(1))
            .unwrap();
        assert_eq!(at_slb, before);
        // If its mapping would change at the switch, migration must wait.
        let would_be = DuetLb::select(&d.hash, &key5, d.dips(vip()).unwrap());
        d.tick(Nanos::from_mins(30));
        if would_be == Some(before) {
            assert!(!d.is_redirected(vip()) || d.stats().migrations <= 1);
        } else {
            assert!(d.is_redirected(vip()), "migrated while unsafe");
            // Connection ends; now migration may proceed.
            d.close_connection(vip(), &key5);
            d.tick(Nanos::from_mins(31));
            assert!(!d.is_redirected(vip()));
        }
    }

    #[test]
    fn periodic_wakeup_advances() {
        let mut d = duet(MigrationPolicy::Periodic(Duration::from_mins(1)));
        assert_eq!(d.next_wakeup(), Some(Nanos::from_mins(1)));
        d.tick(Nanos::from_mins(3));
        assert_eq!(d.next_wakeup(), Some(Nanos::from_mins(4)));
        assert_eq!(duet(MigrationPolicy::WaitPcc).next_wakeup(), None);
    }

    #[test]
    fn unknown_vip_rejected() {
        let mut d = duet(MigrationPolicy::WaitPcc);
        let unknown = Vip(Addr::v4(9, 9, 9, 9, 80));
        assert!(d.update_pool(unknown, vec![dip(1)], Nanos::ZERO).is_err());
        assert!(d.add_vip(vip(), vec![dip(1)]).is_err());
    }
}
