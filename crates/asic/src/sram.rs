//! SRAM geometry and word packing (§4.1, §6.1).
//!
//! ASIC exact-match SRAM is organised in fixed-width words; the paper (and
//! RMT [19]) use **112-bit** words. A table entry of `e` bits packs
//! `floor(112 / e)` entries per word, so the 28-bit SilkRoad ConnTable entry
//! (16-bit digest + 6-bit version + 6-bit overhead) packs exactly 4 per
//! word, while a naive IPv6 entry (37 B key + 18 B action) spans multiple
//! words.

/// SRAM word width in bits, as in RMT and the paper's §6 simulations.
pub const WORD_BITS: u32 = 112;

/// Description of an SRAM allocation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SramSpec {
    /// Bits per entry (match field + action data + packing overhead).
    pub entry_bits: u32,
}

impl SramSpec {
    /// Entries that fit in one word. Entries wider than a word span
    /// `ceil(entry_bits / WORD_BITS)` words ("0" packing ratio is reported
    /// as a fractional entries-per-word below 1).
    pub fn entries_per_word(&self) -> u32 {
        if self.entry_bits == 0 {
            return WORD_BITS; // degenerate, avoids div-by-zero
        }
        WORD_BITS / self.entry_bits // 0 if entry wider than a word
    }

    /// Words needed to store `n` entries.
    pub fn words_for(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let per_word = self.entries_per_word();
        if per_word >= 1 {
            n.div_ceil(per_word as u64)
        } else {
            // Wide entry: each entry occupies multiple whole words.
            let words_per_entry = (self.entry_bits as u64).div_ceil(WORD_BITS as u64);
            n * words_per_entry
        }
    }

    /// Bytes of SRAM needed to store `n` entries (whole words).
    pub fn bytes_for(&self, n: u64) -> u64 {
        self.words_for(n) * (WORD_BITS as u64) / 8
    }

    /// Packing efficiency: useful bits / allocated bits.
    pub fn efficiency(&self) -> f64 {
        let per_word = self.entries_per_word();
        if per_word >= 1 {
            (per_word * self.entry_bits) as f64 / WORD_BITS as f64
        } else {
            let words_per_entry = (self.entry_bits).div_ceil(WORD_BITS);
            self.entry_bits as f64 / (words_per_entry * WORD_BITS) as f64
        }
    }
}

/// Convert a byte count to mebibytes for reporting.
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silkroad_entry_packs_four_per_word() {
        // §6.1: 16-bit digest + 6-bit version + 6-bit overhead = 28 bits;
        // exactly 4 entries per 112-bit word.
        let spec = SramSpec { entry_bits: 28 };
        assert_eq!(spec.entries_per_word(), 4);
        assert!((spec.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn naive_ipv6_entry_spans_words() {
        // 37B key + 18B action = 440 bits -> 4 words per entry.
        let spec = SramSpec { entry_bits: 440 };
        assert_eq!(spec.entries_per_word(), 0);
        assert_eq!(spec.words_for(1), 4);
        assert_eq!(spec.words_for(10), 40);
    }

    #[test]
    fn words_for_rounds_up() {
        let spec = SramSpec { entry_bits: 28 };
        assert_eq!(spec.words_for(0), 0);
        assert_eq!(spec.words_for(1), 1);
        assert_eq!(spec.words_for(4), 1);
        assert_eq!(spec.words_for(5), 2);
    }

    #[test]
    fn ten_million_connections_fit_modern_sram() {
        // The paper's headline: 10M conns at 28 bits/entry is ~33 MB,
        // within 50-100 MB; the naive IPv6 layout is ~550 MB, not.
        let compact = SramSpec { entry_bits: 28 };
        let naive = SramSpec { entry_bits: 440 };
        let compact_mb = bytes_to_mb(compact.bytes_for(10_000_000));
        let naive_mb = bytes_to_mb(naive.bytes_for(10_000_000));
        assert!(compact_mb < 50.0, "compact {compact_mb} MB");
        assert!(naive_mb > 500.0, "naive {naive_mb} MB");
    }

    #[test]
    fn zero_width_entry_is_degenerate_not_panicking() {
        let spec = SramSpec { entry_bits: 0 };
        assert!(spec.entries_per_word() > 0);
        let _ = spec.words_for(10);
    }
}
