//! SRAM geometry and word packing (§4.1, §6.1).
//!
//! ASIC exact-match SRAM is organised in fixed-width words; the paper (and
//! RMT [19]) use **112-bit** words. A table entry of `e` bits packs
//! `floor(112 / e)` entries per word, so the 28-bit SilkRoad ConnTable entry
//! (16-bit digest + 6-bit version + 6-bit overhead) packs exactly 4 per
//! word, while a naive IPv6 entry (37 B key + 18 B action) spans multiple
//! words.

/// SRAM word width in bits, as in RMT and the paper's §6 simulations.
pub const WORD_BITS: u32 = 112;

/// Why an SRAM sizing request cannot be answered exactly.
///
/// The infallible helpers ([`SramSpec::words_for`], [`SramSpec::bytes_for`])
/// paper over these cases (zero-width treated as maximally packed,
/// overflow saturated to `u64::MAX`) so existing report code keeps working;
/// callers that must not silently produce nonsense — the `srcheck` pipeline
/// verifier, the Table 2 model — use the `try_*` variants and surface the
/// error as a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SramError {
    /// The entry layout has zero bits: packing is undefined.
    ZeroWidth,
    /// The word/byte count does not fit in `u64`.
    Overflow {
        /// The entry count that overflowed the computation.
        entries: u64,
    },
}

impl std::fmt::Display for SramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SramError::ZeroWidth => write!(f, "zero-width SRAM entry"),
            SramError::Overflow { entries } => {
                write!(f, "SRAM size overflows u64 for {entries} entries")
            }
        }
    }
}

impl std::error::Error for SramError {}

/// Description of an SRAM allocation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SramSpec {
    /// Bits per entry (match field + action data + packing overhead).
    pub entry_bits: u32,
}

impl SramSpec {
    /// Entries that fit in one word. Entries wider than a word span
    /// `ceil(entry_bits / WORD_BITS)` words ("0" packing ratio is reported
    /// as a fractional entries-per-word below 1).
    pub fn entries_per_word(&self) -> u32 {
        if self.entry_bits == 0 {
            return WORD_BITS; // degenerate, avoids div-by-zero
        }
        WORD_BITS / self.entry_bits // 0 if entry wider than a word
    }

    /// Words needed to store `n` entries, with typed failure on degenerate
    /// layouts (zero-width entries) and arithmetic overflow.
    pub fn try_words_for(&self, n: u64) -> Result<u64, SramError> {
        if n == 0 {
            return Ok(0);
        }
        if self.entry_bits == 0 {
            return Err(SramError::ZeroWidth);
        }
        let per_word = self.entries_per_word();
        if per_word >= 1 {
            Ok(n.div_ceil(per_word as u64))
        } else {
            // Wide entry: each entry occupies multiple whole words.
            let words_per_entry = (self.entry_bits as u64).div_ceil(WORD_BITS as u64);
            n.checked_mul(words_per_entry)
                .ok_or(SramError::Overflow { entries: n })
        }
    }

    /// Bytes of SRAM needed to store `n` entries (whole words), with typed
    /// failure on zero-width layouts and overflow.
    pub fn try_bytes_for(&self, n: u64) -> Result<u64, SramError> {
        let words = self.try_words_for(n)?;
        words
            .checked_mul(WORD_BITS as u64 / 8)
            .ok_or(SramError::Overflow { entries: n })
    }

    /// Words needed to store `n` entries. Infallible: a zero-width entry is
    /// treated as maximally packed and overflow saturates to `u64::MAX` —
    /// use [`SramSpec::try_words_for`] where nonsense must not pass silently.
    pub fn words_for(&self, n: u64) -> u64 {
        match self.try_words_for(n) {
            Ok(w) => w,
            Err(SramError::ZeroWidth) => n.div_ceil(WORD_BITS as u64),
            Err(SramError::Overflow { .. }) => u64::MAX,
        }
    }

    /// Bytes of SRAM needed to store `n` entries (whole words). Saturating;
    /// see [`SramSpec::words_for`] for the degenerate-input policy.
    pub fn bytes_for(&self, n: u64) -> u64 {
        self.words_for(n).saturating_mul(WORD_BITS as u64 / 8)
    }

    /// Packing efficiency: useful bits / allocated bits.
    pub fn efficiency(&self) -> f64 {
        let per_word = self.entries_per_word();
        if per_word >= 1 {
            (per_word * self.entry_bits) as f64 / WORD_BITS as f64
        } else {
            let words_per_entry = (self.entry_bits).div_ceil(WORD_BITS);
            self.entry_bits as f64 / (words_per_entry * WORD_BITS) as f64
        }
    }
}

/// Convert a byte count to mebibytes for reporting.
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silkroad_entry_packs_four_per_word() {
        // §6.1: 16-bit digest + 6-bit version + 6-bit overhead = 28 bits;
        // exactly 4 entries per 112-bit word.
        let spec = SramSpec { entry_bits: 28 };
        assert_eq!(spec.entries_per_word(), 4);
        assert!((spec.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn naive_ipv6_entry_spans_words() {
        // 37B key + 18B action = 440 bits -> 4 words per entry.
        let spec = SramSpec { entry_bits: 440 };
        assert_eq!(spec.entries_per_word(), 0);
        assert_eq!(spec.words_for(1), 4);
        assert_eq!(spec.words_for(10), 40);
    }

    #[test]
    fn words_for_rounds_up() {
        let spec = SramSpec { entry_bits: 28 };
        assert_eq!(spec.words_for(0), 0);
        assert_eq!(spec.words_for(1), 1);
        assert_eq!(spec.words_for(4), 1);
        assert_eq!(spec.words_for(5), 2);
    }

    #[test]
    fn ten_million_connections_fit_modern_sram() {
        // The paper's headline: 10M conns at 28 bits/entry is ~33 MB,
        // within 50-100 MB; the naive IPv6 layout is ~550 MB, not.
        let compact = SramSpec { entry_bits: 28 };
        let naive = SramSpec { entry_bits: 440 };
        let compact_mb = bytes_to_mb(compact.bytes_for(10_000_000));
        let naive_mb = bytes_to_mb(naive.bytes_for(10_000_000));
        assert!(compact_mb < 50.0, "compact {compact_mb} MB");
        assert!(naive_mb > 500.0, "naive {naive_mb} MB");
    }

    #[test]
    fn zero_width_entry_is_degenerate_not_panicking() {
        let spec = SramSpec { entry_bits: 0 };
        assert!(spec.entries_per_word() > 0);
        let _ = spec.words_for(10);
    }

    #[test]
    fn try_variants_reject_zero_width_and_overflow() {
        let zero = SramSpec { entry_bits: 0 };
        assert_eq!(zero.try_words_for(10), Err(SramError::ZeroWidth));
        assert_eq!(zero.try_words_for(0), Ok(0));

        let wide = SramSpec {
            entry_bits: u32::MAX,
        };
        let err = wide.try_words_for(u64::MAX).unwrap_err();
        assert!(matches!(err, SramError::Overflow { .. }));
        // The saturating path caps instead of wrapping.
        assert_eq!(wide.words_for(u64::MAX), u64::MAX);
        assert_eq!(wide.bytes_for(u64::MAX), u64::MAX);

        // Byte conversion can overflow even when the word count fits.
        let spec = SramSpec {
            entry_bits: WORD_BITS,
        };
        assert!(matches!(
            spec.try_bytes_for(u64::MAX / 2),
            Err(SramError::Overflow { .. })
        ));

        // Well-formed requests agree with the infallible helpers.
        let ok = SramSpec { entry_bits: 28 };
        assert_eq!(ok.try_words_for(5), Ok(ok.words_for(5)));
        assert_eq!(ok.try_bytes_for(1_000_000), Ok(ok.bytes_for(1_000_000)));
        assert_eq!(format!("{}", SramError::ZeroWidth), "zero-width SRAM entry");
    }
}
