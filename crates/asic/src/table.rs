//! Exact-match tables with SRAM accounting.
//!
//! An [`ExactMatchTable`] couples the multi-stage cuckoo store from
//! `sr-hash` with a [`TableSpec`] describing the on-chip entry layout, so
//! every table knows both its *behaviour* (lookup/insert/relocate) and its
//! *cost* (SRAM words, crossbar bits, hash bits) — the latter feeds the
//! Table 2 resource model and the Fig 12/14 memory results.

use crate::sram::SramSpec;
pub use sr_hash::cuckoo::MatchMode;
use sr_hash::cuckoo::{CuckooConfig, CuckooError, CuckooTable, InsertOutcome, LookupHit};

/// On-chip layout of one table entry.
#[derive(Clone, Copy, Debug)]
pub struct TableSpec {
    /// Bits of match field stored per entry (digest width, or full key).
    pub match_bits: u32,
    /// Bits of action data per entry (pool version, or full DIP+port).
    pub action_bits: u32,
    /// Packing overhead bits per entry (instruction + next-table address;
    /// the paper uses 6 bits in §6.1).
    pub overhead_bits: u32,
}

impl TableSpec {
    /// The paper's ConnTable layout: 16-bit digest + 6-bit version +
    /// 6-bit overhead = 28 bits.
    pub fn silkroad_conntable() -> TableSpec {
        TableSpec {
            match_bits: 16,
            action_bits: 6,
            overhead_bits: 6,
        }
    }

    /// Total bits per entry.
    pub fn entry_bits(&self) -> u32 {
        self.match_bits + self.action_bits + self.overhead_bits
    }

    /// The SRAM view of this entry.
    pub fn sram(&self) -> SramSpec {
        SramSpec {
            entry_bits: self.entry_bits(),
        }
    }

    /// SRAM bytes to hold `n` entries.
    pub fn bytes_for(&self, n: u64) -> u64 {
        self.sram().bytes_for(n)
    }

    /// [`TableSpec::bytes_for`] with typed failure on zero-width layouts
    /// and overflow (see [`crate::sram::SramError`]).
    pub fn try_bytes_for(&self, n: u64) -> Result<u64, crate::sram::SramError> {
        self.sram().try_bytes_for(n)
    }
}

/// An exact-match table instantiated across pipeline stages.
pub struct ExactMatchTable<V> {
    spec: TableSpec,
    inner: CuckooTable<V>,
}

impl<V: Clone> ExactMatchTable<V> {
    /// Build a table for ~`capacity` entries over `stages` stages with the
    /// given entry layout and match mode.
    pub fn new(
        capacity: usize,
        stages: usize,
        spec: TableSpec,
        match_mode: MatchMode,
        seed: u64,
    ) -> ExactMatchTable<V> {
        let entries_per_word = SramSpec {
            entry_bits: spec.entry_bits(),
        }
        .entries_per_word()
        .max(1) as usize;
        let mut cfg = CuckooConfig::for_capacity(capacity, stages, entries_per_word, seed);
        cfg.match_mode = match_mode;
        ExactMatchTable {
            spec,
            inner: CuckooTable::new(cfg),
        }
    }

    /// The entry layout.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Occupancy fraction.
    pub fn load_factor(&self) -> f64 {
        self.inner.load_factor()
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.inner.config().total_slots()
    }

    /// SRAM bytes provisioned for this table (whole geometry, not just
    /// occupied entries) — what Fig 12 reports.
    pub fn provisioned_bytes(&self) -> u64 {
        self.spec.bytes_for(self.capacity() as u64)
    }

    /// SRAM bytes for the *occupied* entries only.
    pub fn occupied_bytes(&self) -> u64 {
        self.spec.bytes_for(self.len() as u64)
    }

    /// ASIC-path lookup (first match-field hit in stage order).
    pub fn lookup(&self, key: &[u8]) -> Option<LookupHit<'_, V>> {
        self.inner.lookup(key)
    }

    /// [`ExactMatchTable::lookup`] from precomputed hashes (the hash-once
    /// packet path): `stage_hashes[i]` is `stage_fns()[i]` over the key,
    /// `match_hash` is `match_fn()` over the key.
    pub fn lookup_pre(
        &self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<LookupHit<'_, V>> {
        self.inner.lookup_pre(key, stage_hashes, match_hash)
    }

    /// Data-plane lookup that sets the entry's hit bit on an exact match.
    pub fn lookup_marking(&mut self, key: &[u8]) -> Option<LookupHit<'_, V>> {
        self.inner.lookup_marking(key)
    }

    /// Warm the match-field words a prehashed probe will read (pure loads,
    /// no side effects) — see [`CuckooTable::prefetch_words_pre`].
    pub fn prefetch_words_pre(&self, stage_hashes: &[u64]) {
        self.inner.prefetch_words_pre(stage_hashes);
    }

    /// Warm the entry a prehashed probe would dereference — see
    /// [`CuckooTable::prefetch_entry_pre`].
    pub fn prefetch_entry_pre(&self, stage_hashes: &[u64], match_hash: u64) {
        self.inner.prefetch_entry_pre(stage_hashes, match_hash);
    }

    /// [`ExactMatchTable::lookup_marking`] from precomputed hashes.
    pub fn lookup_marking_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<LookupHit<'_, V>> {
        self.inner.lookup_marking_pre(key, stage_hashes, match_hash)
    }

    /// The table's layout generation — see [`CuckooTable::epoch`].
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// First half of a split probe — see [`CuckooTable::locate_pre`].
    pub fn locate_pre(
        &self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<(u32, u32)> {
        self.inner.locate_pre(key, stage_hashes, match_hash)
    }

    /// Second half of a split probe — see
    /// [`CuckooTable::lookup_marking_at`].
    pub fn lookup_marking_at(&mut self, stage: u32, slot: u32, key: &[u8]) -> LookupHit<'_, V> {
        self.inner.lookup_marking_at(stage, slot, key)
    }

    /// Per-stage bucket-hash functions (for assembling a hash-once list).
    pub fn stage_fns(&self) -> &[sr_hash::HashFn] {
        self.inner.stage_fns()
    }

    /// The match-field hash function (shared digest hash or fingerprint).
    pub fn match_fn(&self) -> sr_hash::HashFn {
        self.inner.match_fn()
    }

    /// Software-path exact lookup with mutation.
    pub fn lookup_exact_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        self.inner.lookup_exact_mut(key)
    }

    /// Software-path insertion (BFS move search).
    pub fn insert(&mut self, key: &[u8], value: V) -> Result<InsertOutcome, CuckooError> {
        self.inner.insert(key, value)
    }

    /// [`ExactMatchTable::insert`] from precomputed hashes — the batched
    /// setup path reuses the hashes the packet path computed at learn time,
    /// and the shared BFS scratch inside the table makes the whole install
    /// allocation-free at steady state. Placement is bit-identical to
    /// [`ExactMatchTable::insert`]; see [`CuckooTable::insert_pre`].
    pub fn insert_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
        value: V,
    ) -> Result<InsertOutcome, CuckooError> {
        self.inner.insert_pre(key, stage_hashes, match_hash, value)
    }

    /// [`ExactMatchTable::insert_pre`] after the caller just probed these
    /// hashes and missed — skips the duplicate scan and, for alias-free
    /// free-slot landings, the shadowing re-probe; see
    /// [`CuckooTable::insert_vacant_pre`].
    pub fn insert_vacant_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
        value: V,
    ) -> Result<InsertOutcome, CuckooError> {
        self.inner
            .insert_vacant_pre(key, stage_hashes, match_hash, value)
    }

    /// Software-path removal.
    pub fn remove(&mut self, key: &[u8]) -> Result<V, CuckooError> {
        self.inner.remove(key)
    }

    /// False-positive repair: move the resident entry to another stage.
    pub fn relocate(&mut self, key: &[u8]) -> Result<usize, CuckooError> {
        self.inner.relocate(key)
    }

    /// Iterate all (key, value) pairs (software side).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &V)> {
        self.inner.iter()
    }

    /// Expiry scan: drop entries failing the predicate.
    pub fn retain<F: FnMut(&[u8], &V) -> bool>(&mut self, pred: F) -> Vec<(Box<[u8]>, V)> {
        self.inner.retain(pred)
    }

    /// Clock-algorithm aging sweep over per-entry hit bits: survivors get
    /// their bit cleared, non-survivors are removed and returned.
    pub fn retain_hits<F: FnMut(&[u8], &V, bool) -> bool>(
        &mut self,
        pred: F,
    ) -> Vec<(Box<[u8]>, V)> {
        self.inner.retain_hits(pred)
    }

    /// Cumulative BFS move count.
    pub fn total_moves(&self) -> u64 {
        self.inner.total_moves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conntable_spec_matches_paper() {
        let s = TableSpec::silkroad_conntable();
        assert_eq!(s.entry_bits(), 28);
        assert_eq!(s.sram().entries_per_word(), 4);
        // 1M entries = 250K words = 3.5 MB.
        assert_eq!(s.bytes_for(1_000_000), 250_000 * 14);
    }

    #[test]
    fn table_roundtrip_with_accounting() {
        let mut t: ExactMatchTable<u8> = ExactMatchTable::new(
            1000,
            4,
            TableSpec::silkroad_conntable(),
            MatchMode::Digest { bits: 16 },
            5,
        );
        assert!(t.capacity() >= 1000);
        assert!(t.provisioned_bytes() > 0);
        assert_eq!(t.occupied_bytes(), 0);
        t.insert(b"key-a", 1).unwrap();
        t.insert(b"key-b", 2).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.occupied_bytes() > 0);
        assert_eq!(*t.lookup(b"key-a").unwrap().value, 1);
        assert_eq!(t.remove(b"key-b").unwrap(), 2);
        assert!(t.lookup(b"key-b").is_none() || !t.lookup(b"key-b").unwrap().exact);
    }

    #[test]
    fn full_key_table_has_no_false_hits() {
        let mut t: ExactMatchTable<u8> = ExactMatchTable::new(
            100,
            2,
            TableSpec {
                match_bits: 104,
                action_bits: 48,
                overhead_bits: 6,
            },
            MatchMode::FullKey,
            9,
        );
        t.insert(b"only", 1).unwrap();
        for i in 0..10_000u32 {
            if let Some(hit) = t.lookup(&i.to_be_bytes()) {
                assert!(hit.exact, "full-key table produced inexact hit");
            }
        }
    }
}
