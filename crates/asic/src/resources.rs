//! Chip-level resource accounting — Tables 1 and 2.
//!
//! Table 1 is a literature survey (SRAM growth across merchant-ASIC
//! generations); [`AsicGeneration`] encodes it so `repro table1` can print
//! it alongside our assumed deployment target.
//!
//! Table 2 reports the *additional* hardware resources SilkRoad consumes,
//! normalised by the usage of the baseline `switch.p4` program. We rebuild
//! that accounting from first principles: SilkRoad's demand per resource is
//! computed from its table/register geometry, and the baseline's absolute
//! usage is encoded as documented constants calibrated against the figures
//! published for switch.p4 on a Tofino-class chip. The calibration
//! constants are exactly that — calibration — but the *structure* (what
//! scales with connection count, what is fixed) is faithful, so the model
//! correctly extrapolates from 1 M to 10 M connections.

use crate::sram::bytes_to_mb;
use crate::table::TableSpec;

/// One row of Table 1: an ASIC generation.
#[derive(Clone, Copy, Debug)]
pub struct AsicGeneration {
    /// Marketing-era label.
    pub label: &'static str,
    /// Year of introduction.
    pub year: u16,
    /// Switching capacity, Tbps.
    pub capacity_tbps: f64,
    /// On-chip table SRAM, MB (low end of the published range).
    pub sram_mb_low: u32,
    /// On-chip table SRAM, MB (high end).
    pub sram_mb_high: u32,
}

/// Table 1 of the paper.
pub const ASIC_GENERATIONS: [AsicGeneration; 3] = [
    AsicGeneration {
        label: "<1.6 Tbps (Trident II / FlexPipe)",
        year: 2012,
        capacity_tbps: 1.6,
        sram_mb_low: 10,
        sram_mb_high: 20,
    },
    AsicGeneration {
        label: "3.2 Tbps (Tomahawk / XPliant)",
        year: 2014,
        capacity_tbps: 3.2,
        sram_mb_low: 30,
        sram_mb_high: 60,
    },
    AsicGeneration {
        label: "6.4+ Tbps (Tofino / Tomahawk II / Spectrum)",
        year: 2016,
        capacity_tbps: 6.4,
        sram_mb_low: 50,
        sram_mb_high: 100,
    },
];

/// Absolute usage of each resource class by one program.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceUsage {
    /// Match-crossbar input bits consumed across stages.
    pub crossbar_bits: f64,
    /// Table SRAM bytes.
    pub sram_bytes: f64,
    /// TCAM bytes.
    pub tcam_bytes: f64,
    /// VLIW action slots.
    pub vliw_actions: f64,
    /// Hash-unit output bits.
    pub hash_bits: f64,
    /// Stateful ALUs.
    pub stateful_alus: f64,
    /// Packet-header-vector bits.
    pub phv_bits: f64,
}

/// Why a resource ratio cannot be computed meaningfully.
///
/// [`ResourceUsage::percent_of`] keeps its forgiving semantics (0/0 → 0,
/// x/0 → ∞) for report rendering; [`ResourceUsage::try_percent_of`] instead
/// refuses inputs that would silently turn a Table 2 row into nonsense —
/// negative or non-finite usage numbers, which can only come from upstream
/// overflow or a bug in a demand model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RatioError {
    /// A usage number is negative, NaN, or infinite.
    NonFinite {
        /// Which resource class carried the bad value.
        resource: &'static str,
    },
}

impl std::fmt::Display for RatioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RatioError::NonFinite { resource } => {
                write!(f, "non-finite or negative usage for resource '{resource}'")
            }
        }
    }
}

impl std::error::Error for RatioError {}

impl ResourceUsage {
    /// Chip-wide demand when this (per-pipe) usage is replicated across
    /// `pipes` independent pipes. Every resource class scales linearly:
    /// each pipe owns its own stages, SRAM, hash units, and PHV.
    pub fn replicated(&self, pipes: u32) -> ResourceUsage {
        let n = pipes as f64;
        ResourceUsage {
            crossbar_bits: self.crossbar_bits * n,
            sram_bytes: self.sram_bytes * n,
            tcam_bytes: self.tcam_bytes * n,
            vliw_actions: self.vliw_actions * n,
            hash_bits: self.hash_bits * n,
            stateful_alus: self.stateful_alus * n,
            phv_bits: self.phv_bits * n,
        }
    }

    /// The usage numbers as named fields, for validation and reporting.
    fn named_fields(&self) -> [(&'static str, f64); 7] {
        [
            ("crossbar", self.crossbar_bits),
            ("sram", self.sram_bytes),
            ("tcam", self.tcam_bytes),
            ("vliw", self.vliw_actions),
            ("hash_bits", self.hash_bits),
            ("stateful_alus", self.stateful_alus),
            ("phv", self.phv_bits),
        ]
    }

    /// [`ResourceUsage::percent_of`] with typed failure when either side
    /// carries a negative or non-finite number (the signature of upstream
    /// overflow — e.g. a saturated [`crate::sram::SramSpec::bytes_for`]
    /// cast through `f64`).
    pub fn try_percent_of(&self, base: &ResourceUsage) -> Result<ResourcePercent, RatioError> {
        for side in [self, base] {
            for (resource, v) in side.named_fields() {
                if !v.is_finite() || v < 0.0 {
                    return Err(RatioError::NonFinite { resource });
                }
            }
        }
        Ok(self.percent_of(base))
    }

    /// Element-wise ratio `self / base` expressed as percentages, with 0/0
    /// treated as 0 (e.g. TCAM, which SilkRoad does not touch).
    pub fn percent_of(&self, base: &ResourceUsage) -> ResourcePercent {
        fn pct(add: f64, base: f64) -> f64 {
            if add <= 0.0 {
                0.0
            } else if base <= 0.0 {
                f64::INFINITY
            } else {
                100.0 * add / base
            }
        }
        ResourcePercent {
            crossbar: pct(self.crossbar_bits, base.crossbar_bits),
            sram: pct(self.sram_bytes, base.sram_bytes),
            tcam: pct(self.tcam_bytes, base.tcam_bytes),
            vliw: pct(self.vliw_actions, base.vliw_actions),
            hash_bits: pct(self.hash_bits, base.hash_bits),
            stateful_alus: pct(self.stateful_alus, base.stateful_alus),
            phv: pct(self.phv_bits, base.phv_bits),
        }
    }
}

/// Table 2 output: additional usage as a percentage of baseline usage.
#[derive(Clone, Copy, Debug)]
pub struct ResourcePercent {
    /// Match crossbar %.
    pub crossbar: f64,
    /// SRAM %.
    pub sram: f64,
    /// TCAM %.
    pub tcam: f64,
    /// VLIW actions %.
    pub vliw: f64,
    /// Hash bits %.
    pub hash_bits: f64,
    /// Stateful ALUs %.
    pub stateful_alus: f64,
    /// PHV %.
    pub phv: f64,
}

/// The resource model: baseline switch.p4 usage plus SilkRoad demand
/// derivation.
#[derive(Clone, Copy, Debug)]
pub struct ResourceModel {
    /// Baseline switch.p4 absolute usage (calibration constants; see module
    /// docs). Derived from a ~5000-line L2/L3/ACL/QoS program on a
    /// Tofino-class target.
    pub baseline: ResourceUsage,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            baseline: ResourceUsage {
                // switch.p4 matches on many L2/L3/ACL fields across ~30
                // logical tables: ~1.6 kb of crossbar.
                crossbar_bits: 1600.0,
                // Forwarding/MAC/ACL tables: ~12.8 MB of table SRAM.
                sram_bytes: 12.8e6,
                // LPM/ACL TCAM — SilkRoad adds none, so only used for the
                // 0% row.
                tcam_bytes: 2.0e6,
                // ~90 VLIW action slots.
                vliw_actions: 90.0,
                // Hash bits for ECMP/LAG/learning: ~640 b.
                hash_bits: 640.0,
                // Counters/meters in the baseline: 18 sALUs.
                stateful_alus: 18.0,
                // PHV: ~3.2 kb of header vector in use.
                phv_bits: 3250.0,
            },
        }
    }
}

/// Geometry of a SilkRoad instantiation, for resource derivation.
#[derive(Clone, Copy, Debug)]
pub struct SilkRoadGeometry {
    /// Provisioned ConnTable entries.
    pub conn_entries: u64,
    /// ConnTable entry layout.
    pub conn_spec: TableSpec,
    /// Pipeline stages ConnTable spans.
    pub conn_stages: u32,
    /// Number of VIPs in VIPTable.
    pub vips: u64,
    /// Total (vip, version) rows in DIPPoolTable times average pool size.
    pub dip_pool_rows: u64,
    /// DIP action bits (IPv6: 144).
    pub dip_action_bits: u32,
    /// TransitTable bloom size in bytes.
    pub transit_bytes: u64,
    /// Bloom hash functions.
    pub transit_hashes: u32,
}

impl SilkRoadGeometry {
    /// The paper's Table 2 configuration: 1 M connections, 16-bit digest,
    /// 6-bit version.
    pub fn table2_config() -> SilkRoadGeometry {
        SilkRoadGeometry {
            conn_entries: 1_000_000,
            conn_spec: TableSpec::silkroad_conntable(),
            conn_stages: 4,
            vips: 1000,
            // One row per (VIP, active version) with its member list; ~4
            // live versions per VIP at steady state.
            dip_pool_rows: 4 * 1000,
            dip_action_bits: 144,
            transit_bytes: 256,
            transit_hashes: 4,
        }
    }

    /// Derive absolute resource demand from the geometry.
    pub fn demand(&self) -> ResourceUsage {
        let conn_sram = self.conn_spec.bytes_for(self.conn_entries) as f64;
        // VIPTable: VIP key (IPv6 addr+port+proto = 152 bits) -> version.
        let vip_spec = TableSpec {
            match_bits: 152,
            action_bits: 2 * 6, // old + new version during updates
            overhead_bits: 6,
        };
        let vip_sram = vip_spec.bytes_for(self.vips) as f64;
        // DIPPoolTable: (vip idx, version) -> DIP+port.
        let pool_spec = TableSpec {
            match_bits: 32 + 6,
            action_bits: self.dip_action_bits,
            overhead_bits: 6,
        };
        let pool_sram = pool_spec.bytes_for(self.dip_pool_rows) as f64;
        // LearnTable + metadata plumbing: small fixed SRAM.
        let learn_sram = 64.0 * 1024.0;

        // Crossbar: each table contributes its match width once per
        // instantiated stage (ConnTable replicates its key across stages).
        let crossbar = (self.conn_spec.match_bits * self.conn_stages) as f64
            + vip_spec.match_bits as f64
            + pool_spec.match_bits as f64
            + /* transit key select */ 104.0;

        // Hash bits: per-stage bucket hash for ConnTable (log2(words) ~ 17
        // bits each, plus the 16-bit digest computed once), VIP/pool table
        // addressing, and k bloom indices of ~11 bits each.
        let hash = (self.conn_stages * 17 + 16) as f64
            + 2.0 * 14.0
            + (self.transit_hashes * 11) as f64
            + /* ECMP-style DIP select hash */ 64.0;

        // VLIW: rewrite dst addr+port (2 ops), version carry (1), learn
        // digest generation (1), transit set/test (2), meter color (1),
        // plus per-table hit/miss bookkeeping.
        let vliw = 17.0;

        // Stateful ALUs: bloom filter read/write paths (k each) — matches
        // the paper's observation that TransitTable is the sALU consumer.
        let salus = (2 * self.transit_hashes) as f64;

        // PHV: carried metadata — version (6b), old/new version (12b),
        // digest (16b), transit flag (1b) ≈ 32 bits rounded to containers.
        let phv = 32.0;

        ResourceUsage {
            crossbar_bits: crossbar,
            sram_bytes: conn_sram + vip_sram + pool_sram + learn_sram + self.transit_bytes as f64,
            tcam_bytes: 0.0,
            vliw_actions: vliw,
            hash_bits: hash,
            stateful_alus: salus,
            phv_bits: phv,
        }
    }
}

impl ResourceModel {
    /// Compute the Table 2 row set for a SilkRoad geometry.
    pub fn table2(&self, geom: &SilkRoadGeometry) -> ResourcePercent {
        geom.demand().percent_of(&self.baseline)
    }

    /// Whether a geometry fits a given ASIC generation's SRAM (using the
    /// high end of the range, as the paper's 10 M-connection claim does).
    pub fn fits(&self, geom: &SilkRoadGeometry, gen: &AsicGeneration) -> bool {
        let need_mb = bytes_to_mb((geom.demand().sram_bytes + self.baseline.sram_bytes) as u64);
        need_mb <= gen.sram_mb_high as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_are_the_papers() {
        assert_eq!(ASIC_GENERATIONS.len(), 3);
        assert_eq!(ASIC_GENERATIONS[0].year, 2012);
        assert_eq!(ASIC_GENERATIONS[2].sram_mb_high, 100);
        // "growing by five times over the past four years"
        assert!(
            ASIC_GENERATIONS[2].sram_mb_low as f64 / ASIC_GENERATIONS[0].sram_mb_low as f64 >= 5.0
        );
    }

    #[test]
    fn table2_percentages_in_paper_ballpark() {
        // Paper: crossbar 37.53, SRAM 27.92, TCAM 0, VLIW 18.89,
        // hash 34.17, sALU 44.44, PHV 0.98 (percent).
        let m = ResourceModel::default();
        let p = m.table2(&SilkRoadGeometry::table2_config());
        assert!(
            (20.0..60.0).contains(&p.crossbar),
            "crossbar {}",
            p.crossbar
        );
        assert!((20.0..40.0).contains(&p.sram), "sram {}", p.sram);
        assert_eq!(p.tcam, 0.0);
        assert!((10.0..30.0).contains(&p.vliw), "vliw {}", p.vliw);
        assert!((20.0..50.0).contains(&p.hash_bits), "hash {}", p.hash_bits);
        assert!(
            (30.0..60.0).contains(&p.stateful_alus),
            "salu {}",
            p.stateful_alus
        );
        assert!(p.phv < 2.0, "phv {}", p.phv);
        // All additional usage below 50%, the paper's headline for Table 2.
        for v in [
            p.crossbar,
            p.sram,
            p.tcam,
            p.vliw,
            p.hash_bits,
            p.stateful_alus,
            p.phv,
        ] {
            assert!(v < 60.0);
        }
    }

    #[test]
    fn ten_million_connections_fit_2016_asic() {
        let mut g = SilkRoadGeometry::table2_config();
        g.conn_entries = 10_000_000;
        let m = ResourceModel::default();
        assert!(m.fits(&g, &ASIC_GENERATIONS[2]));
        // ...but not the 2012 generation.
        assert!(!m.fits(&g, &ASIC_GENERATIONS[0]));
    }

    #[test]
    fn demand_scales_with_connections() {
        let small = SilkRoadGeometry {
            conn_entries: 100_000,
            ..SilkRoadGeometry::table2_config()
        };
        let big = SilkRoadGeometry {
            conn_entries: 10_000_000,
            ..SilkRoadGeometry::table2_config()
        };
        assert!(big.demand().sram_bytes > small.demand().sram_bytes * 50.0);
        // Non-SRAM resources are geometry-fixed, not per-connection.
        assert_eq!(big.demand().stateful_alus, small.demand().stateful_alus);
    }

    #[test]
    fn try_percent_of_rejects_non_finite_usage() {
        let good = ResourceModel::default().baseline;
        assert!(good.try_percent_of(&good).is_ok());
        let bad = ResourceUsage {
            sram_bytes: f64::NAN,
            ..good
        };
        assert_eq!(
            bad.try_percent_of(&good).unwrap_err(),
            RatioError::NonFinite { resource: "sram" }
        );
        let neg = ResourceUsage {
            hash_bits: -1.0,
            ..good
        };
        assert_eq!(
            good.try_percent_of(&neg).unwrap_err(),
            RatioError::NonFinite {
                resource: "hash_bits"
            }
        );
    }

    #[test]
    fn replicated_scales_every_field_linearly() {
        let one = ResourceModel::default().baseline;
        let four = one.replicated(4);
        for ((name_a, a), (_, b)) in one.named_fields().iter().zip(four.named_fields().iter()) {
            assert_eq!(*b, a * 4.0, "field {name_a}");
        }
        assert_eq!(one.replicated(1), one);
    }

    #[test]
    fn percent_of_handles_zero_base() {
        let a = ResourceUsage {
            tcam_bytes: 1.0,
            ..Default::default()
        };
        let b = ResourceUsage::default();
        assert!(a.percent_of(&b).tcam.is_infinite());
        assert_eq!(b.percent_of(&a).tcam, 0.0);
    }
}
