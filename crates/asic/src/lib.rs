//! Behavioural model of a programmable switching ASIC (§4.1).
//!
//! SilkRoad's feasibility rests on four hardware primitives that this crate
//! models faithfully enough to reproduce the paper's memory and PCC results:
//!
//! * **SRAM with word packing** ([`sram`]) — exact-match tables live in
//!   112-bit SRAM words; several compact entries pack into one word
//!   (SilkRoad packs four 28-bit ConnTable entries per word).
//! * **Exact-match tables over multi-stage cuckoo hashing** ([`table`]) —
//!   lookups are line-rate; *insertions are software*, performed by the
//!   switch management CPU ([`cpu`]) which runs the BFS move search.
//! * **Learning filter** ([`learning`]) — batches first-packet events (with
//!   deduplication) toward the CPU, notifying on full-or-timeout.
//! * **Transactional memory / register arrays** ([`register`]) — one-cycle
//!   read-check-modify-write state, used for bloom filters and counters;
//!   and **meters** ([`meter`]) — RFC 4115 two-rate three-color markers for
//!   per-VIP isolation.
//!
//! [`resources`] adds the chip-level resource-accounting model used to
//! regenerate Table 1 (SRAM growth across ASIC generations) and Table 2
//! (SilkRoad's additional resource usage over the baseline switch.p4).
//!
//! [`check`] adds `srcheck`, the pipeline-layout verifier: it validates a
//! [`PipelineProgram`]'s physical placement against a [`ChipSpec`]'s
//! per-stage budgets the way an RMT compiler back end would, and rejects
//! unplaceable layouts with structured diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod cpu;
pub mod learning;
pub mod meter;
pub mod pipeline;
pub mod register;
pub mod resources;
pub mod sram;
pub mod table;

pub use check::{check_program, CheckReport, ChipSpec, Diagnostic, Rule, Severity, StageUsage};
pub use cpu::{CpuJob, SwitchCpu, SwitchCpuConfig};
pub use learning::{LearnEvent, LearningFilter, LearningFilterConfig};
pub use meter::{Meter, MeterColor, MeterConfig};
pub use pipeline::{MatchKind, PipelineProgram, RegisterDecl, TableDecl, TableDependency};
pub use register::RegisterArray;
pub use resources::{AsicGeneration, RatioError, ResourceModel, ResourcePercent, ResourceUsage};
pub use sram::{SramError, SramSpec, WORD_BITS};
pub use table::{ExactMatchTable, TableSpec};
