//! The learning filter (§4.1, §4.3).
//!
//! "ASICs often batch new connection events in a learning filter to avoid
//! frequent interruptions to the switch CPU. The filter also removes
//! duplicate events (from multiple packets of the same connection). The
//! learning filter can store up to thousands of requests and notifies the
//! switch software when the learning filter is full or after a timeout."
//!
//! The timeout (500 µs – 5 ms in the paper) is the main lever in Fig 18:
//! a longer timeout means connections stay *pending* longer, growing the
//! set the TransitTable must remember during an update.

use sr_hash::FxHashSet;
use sr_types::{Duration, Nanos, TupleKey};

/// A new-connection event queued toward the switch CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LearnEvent<M> {
    /// The connection key (canonical 5-tuple bytes), stored inline: learn
    /// events sit on the connection-setup path, where a per-event heap key
    /// would show up as an allocation per new connection.
    pub key: TupleKey,
    /// Metadata captured at first-packet time (e.g. the DIP-pool version the
    /// data plane selected).
    pub meta: M,
    /// When the first packet hit the ASIC.
    pub arrived: Nanos,
}

/// Learning-filter configuration.
#[derive(Clone, Copy, Debug)]
pub struct LearningFilterConfig {
    /// Maximum buffered events before an immediate notification (the paper
    /// defaults to 2K in §6).
    pub capacity: usize,
    /// Notify the CPU this long after the oldest buffered event.
    pub timeout: Duration,
}

impl Default for LearningFilterConfig {
    fn default() -> Self {
        LearningFilterConfig {
            capacity: 2048,
            timeout: Duration::from_millis(1),
        }
    }
}

/// The learning filter: dedup + batch + full-or-timeout notification.
pub struct LearningFilter<M> {
    cfg: LearningFilterConfig,
    buf: Vec<LearnEvent<M>>,
    pending_keys: FxHashSet<TupleKey>,
    /// Events dropped because the filter was full (overflow loses learns —
    /// those connections are retried on their next packet).
    overflow_drops: u64,
}

impl<M> LearningFilter<M> {
    /// Create an empty filter.
    pub fn new(cfg: LearningFilterConfig) -> LearningFilter<M> {
        LearningFilter {
            buf: Vec::with_capacity(cfg.capacity),
            pending_keys: FxHashSet::default(),
            overflow_drops: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LearningFilterConfig {
        &self.cfg
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to overflow so far.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    /// Whether `key` currently has a buffered learn event (i.e. the
    /// connection is pending in the filter).
    pub fn is_pending(&self, key: &[u8]) -> bool {
        self.pending_keys.contains(key)
    }

    /// Record a first-packet event. Duplicate keys are absorbed (the dedup
    /// the hardware performs). Returns whether the event was enqueued.
    pub fn learn(&mut self, key: &[u8], meta: M, now: Nanos) -> bool {
        if self.pending_keys.contains(key) {
            return false;
        }
        if self.buf.len() >= self.cfg.capacity {
            self.overflow_drops += 1;
            return false;
        }
        let inline = TupleKey::from_bytes(key);
        self.pending_keys.insert(inline);
        self.buf.push(LearnEvent {
            key: inline,
            meta,
            arrived: now,
        });
        true
    }

    /// [`LearningFilter::learn`] for callers that already performed the
    /// duplicate check against a superset of this filter's pending keys
    /// (the control plane's in-flight set covers the filter *and* the CPU
    /// queue). Skips the dedup probe; still records the key in the pending
    /// set so [`LearningFilter::is_pending`] stays accurate.
    pub fn learn_preapproved(&mut self, key: TupleKey, meta: M, now: Nanos) -> bool {
        if self.buf.len() >= self.cfg.capacity {
            self.overflow_drops += 1;
            return false;
        }
        self.pending_keys.insert(key);
        self.buf.push(LearnEvent {
            key,
            meta,
            arrived: now,
        });
        true
    }

    /// When the CPU should next be notified, given the current buffer:
    /// `None` if empty, `Some(deadline)` otherwise. A full buffer notifies
    /// immediately (`deadline = now of the filling event`).
    pub fn notify_deadline(&self) -> Option<Nanos> {
        let oldest = self.buf.first()?.arrived;
        if self.buf.len() >= self.cfg.capacity {
            Some(oldest)
        } else {
            Some(oldest + self.cfg.timeout)
        }
    }

    /// Drain the batch if the notification condition holds at `now`
    /// (buffer full, or oldest event older than the timeout).
    pub fn drain_if_due(&mut self, now: Nanos) -> Option<Vec<LearnEvent<M>>> {
        match self.notify_deadline() {
            Some(d) if d <= now => Some(self.drain_now()),
            _ => None,
        }
    }

    /// Unconditionally drain everything (e.g. forced flush during an update).
    pub fn drain_now(&mut self) -> Vec<LearnEvent<M>> {
        self.pending_keys.clear();
        std::mem::take(&mut self.buf)
    }

    /// The recycled-buffer form of [`LearningFilter::drain_if_due`]: feed
    /// each due event to `f` in arrival order, keeping the buffer (and the
    /// pending set's table) allocated for the next batch. Returns the
    /// number of events drained — the steady-state setup path drains every
    /// learn batch through this without touching the allocator.
    pub fn drain_if_due_with<F: FnMut(LearnEvent<M>)>(&mut self, now: Nanos, mut f: F) -> usize {
        match self.notify_deadline() {
            Some(d) if d <= now => {
                self.pending_keys.clear();
                let n = self.buf.len();
                for ev in self.buf.drain(..) {
                    f(ev);
                }
                n
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, timeout_ms: u64) -> LearningFilterConfig {
        LearningFilterConfig {
            capacity,
            timeout: Duration::from_millis(timeout_ms),
        }
    }

    #[test]
    fn dedup_absorbs_repeat_packets() {
        let mut f: LearningFilter<u8> = LearningFilter::new(cfg(10, 1));
        assert!(f.learn(b"conn1", 0, Nanos::ZERO));
        assert!(!f.learn(b"conn1", 0, Nanos::from_micros(10)));
        assert_eq!(f.len(), 1);
        assert!(f.is_pending(b"conn1"));
        assert!(!f.is_pending(b"conn2"));
    }

    #[test]
    fn timeout_drives_notification() {
        let mut f: LearningFilter<u8> = LearningFilter::new(cfg(10, 1));
        f.learn(b"a", 0, Nanos::from_micros(100));
        assert_eq!(
            f.notify_deadline(),
            Some(Nanos::from_micros(100) + Duration::from_millis(1))
        );
        assert!(f.drain_if_due(Nanos::from_micros(500)).is_none());
        let batch = f.drain_if_due(Nanos::from_micros(1100)).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(f.is_empty());
        assert_eq!(f.notify_deadline(), None);
    }

    #[test]
    fn full_buffer_notifies_immediately() {
        let mut f: LearningFilter<u8> = LearningFilter::new(cfg(3, 1000));
        for (i, k) in [b"a", b"b", b"c"].iter().enumerate() {
            f.learn(*k, 0, Nanos::from_micros(i as u64));
        }
        // Deadline collapses to the oldest arrival when full.
        assert_eq!(f.notify_deadline(), Some(Nanos::ZERO));
        assert!(f.drain_if_due(Nanos::from_micros(2)).is_some());
    }

    #[test]
    fn overflow_drops_counted() {
        let mut f: LearningFilter<u8> = LearningFilter::new(cfg(2, 1));
        f.learn(b"a", 0, Nanos::ZERO);
        f.learn(b"b", 0, Nanos::ZERO);
        assert!(!f.learn(b"c", 0, Nanos::ZERO));
        assert_eq!(f.overflow_drops(), 1);
    }

    #[test]
    fn drain_clears_pending_set() {
        let mut f: LearningFilter<u8> = LearningFilter::new(cfg(10, 1));
        f.learn(b"a", 0, Nanos::ZERO);
        f.drain_now();
        // After drain the same key may be learned again (entry insertion
        // may still be in flight — the CPU dedups at its layer).
        assert!(f.learn(b"a", 0, Nanos::from_millis(2)));
    }

    #[test]
    fn callback_drain_matches_vec_drain() {
        let mut a: LearningFilter<u32> = LearningFilter::new(cfg(10, 1));
        let mut b: LearningFilter<u32> = LearningFilter::new(cfg(10, 1));
        for (i, k) in [b"x", b"y", b"z"].iter().enumerate() {
            a.learn(*k, i as u32, Nanos::from_micros(i as u64));
            b.learn(*k, i as u32, Nanos::from_micros(i as u64));
        }
        // Not yet due: callback must not fire.
        assert_eq!(b.drain_if_due_with(Nanos::from_micros(5), |_| panic!()), 0);
        let when = Nanos::from_millis(2);
        let via_vec = a.drain_if_due(when).expect("due");
        let mut via_cb = Vec::new();
        assert_eq!(b.drain_if_due_with(when, |ev| via_cb.push(ev)), 3);
        assert_eq!(via_vec, via_cb);
        assert!(b.is_empty());
        assert!(!b.is_pending(b"x"));
    }

    #[test]
    fn batch_preserves_arrival_order_and_meta() {
        let mut f: LearningFilter<u32> = LearningFilter::new(cfg(10, 1));
        f.learn(b"a", 10, Nanos::from_micros(1));
        f.learn(b"b", 20, Nanos::from_micros(2));
        let batch = f.drain_now();
        assert_eq!(batch[0].meta, 10);
        assert_eq!(batch[1].meta, 20);
        assert!(batch[0].arrived < batch[1].arrived);
    }
}
