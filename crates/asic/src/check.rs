//! `srcheck` — the pipeline-layout verifier.
//!
//! The paper's Table 2 exists because an RMT compiler *rejects* programs
//! that blow per-stage budgets; a resource model that happily "runs" an
//! unplaceable [`PipelineProgram`] proves nothing. This module plays the
//! compiler's role: it validates a program's declared physical placement
//! against a [`ChipSpec`] the way a Tofino-class back end would —
//!
//! * **stage count** — every table/register span must fit the pipeline;
//! * **per-stage SRAM block packing** — entries are packed into 112-bit
//!   words ([`crate::sram`]), words into fixed-size blocks, blocks into a
//!   per-stage budget;
//! * **per-stage crossbar / hash-bit / stateful-ALU / VLIW budgets**, with
//!   exact tables replicating key and hash into every spanned stage;
//! * **TCAM budgets** for ternary tables;
//! * **PHV budget** for carried metadata;
//! * **transactional-register single-stage placement** — the TransitTable's
//!   one-cycle read-check-modify-write cannot span stages;
//! * **dependency DAG** — declared [`TableDependency`] edges (ConnTable →
//!   TransitTable → VIPTable → DIPPoolTable) must be acyclic and realizable
//!   in the declared stage order.
//!
//! Violations come back as structured [`Diagnostic`]s (stable rule id,
//! severity, unit/stage location, measured-vs-budget numbers) inside a
//! [`CheckReport`] that also carries the full per-stage placement table —
//! the artifact `repro check` prints and `EXPERIMENTS.md` records.

use crate::pipeline::{MatchKind, PipelineProgram, RegisterDecl, TableDecl};
use crate::sram::{SramError, SramSpec, WORD_BITS};

/// Physical budgets of one match-action pipeline, at the granularity the
/// verifier checks. Numbers are per *stage* unless noted.
#[derive(Clone, Copy, Debug)]
pub struct ChipSpec {
    /// Chip label (reports).
    pub name: &'static str,
    /// Independent match-action pipes on the chip. Each pipe carries its
    /// own full set of stages and per-stage budgets; a program replicated
    /// across pipes must fit *one* pipe's budgets.
    pub pipes: u32,
    /// Match-action stages in the pipeline (per pipe).
    pub stages: u32,
    /// SRAM words ([`WORD_BITS`] wide) per block — the allocation unit.
    pub sram_block_words: u32,
    /// SRAM blocks available per stage.
    pub sram_blocks_per_stage: u32,
    /// TCAM bytes available per stage.
    pub tcam_bytes_per_stage: u64,
    /// Match-crossbar input bits per stage.
    pub crossbar_bits_per_stage: u32,
    /// Hash-unit output bits per stage.
    pub hash_bits_per_stage: u32,
    /// Stateful ALUs per stage.
    pub salus_per_stage: u32,
    /// VLIW action slots per stage.
    pub vliw_slots_per_stage: u32,
    /// Packet-header-vector bits (whole pipeline).
    pub phv_bits: u32,
}

impl ChipSpec {
    /// A 6.4 Tbps-class chip (Table 1's 2016 generation): 12 stages of
    /// ~8.6 MB SRAM (~103 MB total — the "50–100 MB" class the paper's
    /// 10 M-connection claim targets), RMT-like crossbar/hash/ALU widths.
    pub fn tofino_class() -> ChipSpec {
        ChipSpec {
            name: "tofino-class (6.4T, 2016)",
            pipes: 4,
            stages: 12,
            sram_block_words: 1024,
            sram_blocks_per_stage: 600,
            tcam_bytes_per_stage: 1_536 * 1024,
            crossbar_bits_per_stage: 640,
            hash_bits_per_stage: 128,
            salus_per_stage: 8,
            vliw_slots_per_stage: 32,
            phv_bits: 4_096,
        }
    }

    /// Bytes per SRAM block.
    pub fn sram_block_bytes(&self) -> u64 {
        self.sram_block_words as u64 * (WORD_BITS as u64) / 8
    }

    /// Total table SRAM across the pipeline, bytes.
    pub fn sram_bytes_total(&self) -> u64 {
        self.sram_block_bytes() * self.sram_blocks_per_stage as u64 * self.stages as u64
    }
}

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Info,
    /// Legal but suspicious (e.g. a budget above 90% utilization).
    Warning,
    /// The program is not placeable as declared.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The verifier's rule catalog. Each rule has a stable id (`SRCnnn`) that
/// tests and tooling match on; see `DESIGN.md` for the prose catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// SRC001 — a unit's stage span exceeds the pipeline length.
    StageCount,
    /// SRC002 — per-stage SRAM block budget exceeded.
    SramStageBudget,
    /// SRC003 — per-stage TCAM byte budget exceeded.
    TcamStageBudget,
    /// SRC004 — per-stage match-crossbar bit budget exceeded.
    CrossbarStageBudget,
    /// SRC005 — hash-bit budget exceeded (per stage, or pipeline total when
    /// the diagnostic carries no stage).
    HashBudget,
    /// SRC006 — per-stage stateful-ALU budget exceeded.
    SaluStageBudget,
    /// SRC007 — per-stage VLIW action-slot budget exceeded.
    VliwStageBudget,
    /// SRC008 — PHV bit budget exceeded.
    PhvBudget,
    /// SRC009 — exact-table replication is degenerate: a zero-stage span,
    /// or more stages than the entry count can populate.
    ExactReplication,
    /// SRC010 — a transactional register array spans more than one stage.
    RegisterSingleStage,
    /// SRC011 — a dependency references an unknown unit.
    DepUnknown,
    /// SRC012 — a dependency is not realizable in the declared placement
    /// (consumer does not start strictly after its producer ends).
    DepOrder,
    /// SRC013 — the dependency graph has a cycle.
    DepCycle,
    /// SRC014 — a table stores a wider match field than the key presented
    /// to the crossbar (a digest cannot widen the key).
    DigestWidth,
    /// SRC015 — degenerate geometry: zero-width entries/cells whose SRAM
    /// demand cannot be computed ([`SramError`]).
    ZeroWidth,
    /// SRC016 — the program replicates across more pipes than the chip
    /// has (or declares zero pipes).
    PipeCount,
}

impl Rule {
    /// The stable rule id.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::StageCount => "SRC001",
            Rule::SramStageBudget => "SRC002",
            Rule::TcamStageBudget => "SRC003",
            Rule::CrossbarStageBudget => "SRC004",
            Rule::HashBudget => "SRC005",
            Rule::SaluStageBudget => "SRC006",
            Rule::VliwStageBudget => "SRC007",
            Rule::PhvBudget => "SRC008",
            Rule::ExactReplication => "SRC009",
            Rule::RegisterSingleStage => "SRC010",
            Rule::DepUnknown => "SRC011",
            Rule::DepOrder => "SRC012",
            Rule::DepCycle => "SRC013",
            Rule::DigestWidth => "SRC014",
            Rule::ZeroWidth => "SRC015",
            Rule::PipeCount => "SRC016",
        }
    }
}

/// One structured finding: which rule fired, how bad, where, and the
/// measured-vs-budget numbers behind it.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Severity.
    pub severity: Severity,
    /// The table/register the finding is about (None for whole-program
    /// findings such as PHV).
    pub unit: Option<&'static str>,
    /// The physical stage (None for whole-program findings).
    pub stage: Option<u32>,
    /// Measured demand, in the rule's unit (blocks, bits, slots…).
    pub measured: u64,
    /// The chip budget it is compared against.
    pub budget: u64,
    /// Human-readable one-liner.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.rule.id(), self.severity, self.message)?;
        if let Some(u) = self.unit {
            write!(f, " [unit {u}]")?;
        }
        if let Some(s) = self.stage {
            write!(f, " [stage {s}]")?;
        }
        write!(f, " ({}/{})", self.measured, self.budget)
    }
}

/// Per-stage resource accumulation — one row of the placement report.
#[derive(Clone, Debug, Default)]
pub struct StageUsage {
    /// SRAM blocks allocated.
    pub sram_blocks: u64,
    /// TCAM bytes allocated.
    pub tcam_bytes: u64,
    /// Crossbar bits presented.
    pub crossbar_bits: u64,
    /// Hash bits consumed.
    pub hash_bits: u64,
    /// Stateful ALUs consumed.
    pub salus: u64,
    /// VLIW slots consumed.
    pub vliw: u64,
    /// Units (tables/registers) occupying the stage.
    pub units: Vec<&'static str>,
}

/// Everything the verifier learned about one program on one chip.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Program name.
    pub program: &'static str,
    /// Pipes the program replicates into (from [`PipelineProgram::pipes`]).
    pub pipes: u32,
    /// The chip it was checked against.
    pub chip: ChipSpec,
    /// Per-stage placement (index = physical stage).
    pub stages: Vec<StageUsage>,
    /// All findings, in rule order of discovery.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether the program is placeable (no error-severity findings).
    pub fn is_placeable(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether a specific rule fired at error severity.
    pub fn has_error(&self, rule: Rule) -> bool {
        self.errors().any(|d| d.rule == rule)
    }

    /// Render the placement table and diagnostics as the fixed-width report
    /// `repro check` prints (and `EXPERIMENTS.md` records).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let c = &self.chip;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== srcheck: {} on {} ({} stages, {:.1} MB SRAM/pipe, pipes {}/{}) ==",
            self.program,
            c.name,
            c.stages,
            c.sram_bytes_total() as f64 / (1024.0 * 1024.0),
            self.pipes,
            c.pipes,
        );
        let _ = writeln!(
            out,
            "{:>5}  {:>11}  {:>9}  {:>9}  {:>9}  {:>5}  {:>5}  units",
            "stage", "sram-blocks", "tcam-KB", "xbar-bits", "hash-bits", "sALU", "vliw"
        );
        for (i, s) in self.stages.iter().enumerate() {
            if s.units.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>5}  {:>11}  {:>9}  {:>9}  {:>9}  {:>5}  {:>5}  {}",
                i,
                format!("{}/{}", s.sram_blocks, c.sram_blocks_per_stage),
                format!("{}/{}", s.tcam_bytes / 1024, c.tcam_bytes_per_stage / 1024),
                format!("{}/{}", s.crossbar_bits, c.crossbar_bits_per_stage),
                format!("{}/{}", s.hash_bits, c.hash_bits_per_stage),
                format!("{}/{}", s.salus, c.salus_per_stage),
                format!("{}/{}", s.vliw, c.vliw_slots_per_stage),
                s.units.join(" "),
            );
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "diagnostics: none");
        } else {
            let _ = writeln!(out, "diagnostics:");
            for d in &self.diagnostics {
                let _ = writeln!(out, "  {d}");
            }
        }
        let errors = self.errors().count();
        let _ = write!(
            out,
            "result: {}",
            if errors == 0 {
                "PLACEABLE".to_string()
            } else {
                format!(
                    "REJECTED ({errors} error{})",
                    if errors == 1 { "" } else { "s" }
                )
            }
        );
        out
    }
}

/// A unit's stage span as the checker sees it (clamped for accumulation).
struct Span {
    first: u32,
    count: u32,
}

impl Span {
    fn last(&self) -> u32 {
        self.first + self.count - 1
    }
}

/// The verifier. See the module docs for the rule set.
pub fn check_program(prog: &PipelineProgram, chip: &ChipSpec) -> CheckReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut stages: Vec<StageUsage> = (0..chip.stages).map(|_| StageUsage::default()).collect();

    // SRC016: the pipes dimension. Every per-stage budget below is a
    // *per-pipe* budget (each pipe owns its own stages), so the only
    // chip-wide pipe check is the replication count itself.
    if prog.pipes == 0 || prog.pipes > chip.pipes {
        diags.push(Diagnostic {
            rule: Rule::PipeCount,
            severity: Severity::Error,
            unit: None,
            stage: None,
            measured: prog.pipes as u64,
            budget: chip.pipes as u64,
            message: if prog.pipes == 0 {
                "program declares zero pipes; it must occupy at least one".to_string()
            } else {
                format!(
                    "program replicates across {} pipes but the chip has {}",
                    prog.pipes, chip.pipes
                )
            },
        });
    }

    for t in &prog.tables {
        let span = table_span(t, chip, &mut diags);
        accumulate_table(t, &span, chip, &mut stages, &mut diags);
        if t.stored_key_bits > t.key_bits {
            diags.push(Diagnostic {
                rule: Rule::DigestWidth,
                severity: Severity::Error,
                unit: Some(t.name),
                stage: None,
                measured: t.stored_key_bits as u64,
                budget: t.key_bits as u64,
                message: format!(
                    "table '{}' stores a {}-bit match field but only {} key bits reach \
                     the crossbar; a digest cannot widen the key",
                    t.name, t.stored_key_bits, t.key_bits
                ),
            });
        }
    }
    for r in &prog.registers {
        let span = register_span(r, chip, &mut diags);
        accumulate_register(r, &span, chip, &mut stages, &mut diags);
    }

    check_stage_budgets(chip, &stages, &mut diags);
    check_phv_and_hash_totals(prog, chip, &stages, &mut diags);
    check_deps(prog, &mut diags);

    CheckReport {
        program: prog.name,
        pipes: prog.pipes,
        chip: *chip,
        stages,
        diagnostics: diags,
    }
}

impl PipelineProgram {
    /// Run the pipeline-layout verifier against `chip` — see
    /// [`check_program`].
    pub fn check(&self, chip: &ChipSpec) -> CheckReport {
        check_program(self, chip)
    }
}

/// Validate a table's span; returns it clamped to the pipeline so resource
/// accumulation stays in range.
fn table_span(t: &TableDecl, chip: &ChipSpec, diags: &mut Vec<Diagnostic>) -> Span {
    if t.kind == MatchKind::Exact {
        if t.stages == 0 {
            diags.push(Diagnostic {
                rule: Rule::ExactReplication,
                severity: Severity::Error,
                unit: Some(t.name),
                stage: None,
                measured: 0,
                budget: 1,
                message: format!(
                    "exact table '{}' declares a zero-stage span; it must replicate \
                     its key and hash into at least one stage",
                    t.name
                ),
            });
        } else if t.entries > 0 && t.stages as u64 > t.entries {
            diags.push(Diagnostic {
                rule: Rule::ExactReplication,
                severity: Severity::Warning,
                unit: Some(t.name),
                stage: None,
                measured: t.stages as u64,
                budget: t.entries,
                message: format!(
                    "exact table '{}' replicates across {} stages for only {} entries; \
                     some stages hold no words",
                    t.name, t.stages, t.entries
                ),
            });
        }
    }
    span_within_pipeline(t.name, t.first_stage, t.stages, chip, diags)
}

/// Validate a register's span (including the transactional rule).
fn register_span(r: &RegisterDecl, chip: &ChipSpec, diags: &mut Vec<Diagnostic>) -> Span {
    if r.transactional && r.stages > 1 {
        diags.push(Diagnostic {
            rule: Rule::RegisterSingleStage,
            severity: Severity::Error,
            unit: Some(r.name),
            stage: Some(r.first_stage),
            measured: r.stages as u64,
            budget: 1,
            message: format!(
                "transactional register '{}' spans {} stages; one-cycle \
                 read-check-modify-write requires single-stage placement",
                r.name, r.stages
            ),
        });
    }
    span_within_pipeline(r.name, r.first_stage, r.stages, chip, diags)
}

/// SRC001: the span must fit `chip.stages`. The returned span is clamped.
fn span_within_pipeline(
    name: &'static str,
    first: u32,
    count: u32,
    chip: &ChipSpec,
    diags: &mut Vec<Diagnostic>,
) -> Span {
    let count = count.max(1);
    let end = first.saturating_add(count);
    if end > chip.stages {
        diags.push(Diagnostic {
            rule: Rule::StageCount,
            severity: Severity::Error,
            unit: Some(name),
            stage: Some(first),
            measured: end as u64,
            budget: chip.stages as u64,
            message: format!(
                "'{name}' occupies stages {first}..{} but the pipeline has {} stages",
                end - 1,
                chip.stages
            ),
        });
    }
    let first = first.min(chip.stages.saturating_sub(1));
    Span {
        first,
        count: count.min(chip.stages - first),
    }
}

/// Spread a table's demand over its span: exact tables pack per-stage
/// entry shares into SRAM blocks and replicate key/hash per stage; ternary
/// tables consume TCAM. Action slots are charged where the action executes
/// (the last spanned stage).
fn accumulate_table(
    t: &TableDecl,
    span: &Span,
    chip: &ChipSpec,
    stages: &mut [StageUsage],
    diags: &mut Vec<Diagnostic>,
) {
    let per_stage_entries = t.entries.div_ceil(span.count as u64);
    let per_stage_hash = if t.kind == MatchKind::Exact {
        (t.hash_bits() / t.stages.max(1)) as u64
    } else {
        0
    };
    for s in span.first..=span.last() {
        let Some(u) = stages.get_mut(s as usize) else {
            continue;
        };
        u.units.push(t.name);
        u.crossbar_bits += t.key_bits as u64;
        u.hash_bits += per_stage_hash;
        if s == span.last() {
            u.vliw += t.action_slots as u64;
        }
        match t.kind {
            MatchKind::Exact => {
                let spec = SramSpec {
                    entry_bits: t.stored_key_bits + t.action_bits + 6,
                };
                match spec.try_words_for(per_stage_entries) {
                    Ok(words) => {
                        u.sram_blocks += words.div_ceil(chip.sram_block_words as u64);
                    }
                    Err(e) => push_sram_error(t.name, s, e, diags),
                }
            }
            MatchKind::Ternary => {
                u.tcam_bytes += (per_stage_entries * 2 * t.key_bits as u64).div_ceil(8);
            }
        }
    }
}

/// Spread a register group's SRAM/ALU/hash demand over its span.
fn accumulate_register(
    r: &RegisterDecl,
    span: &Span,
    chip: &ChipSpec,
    stages: &mut [StageUsage],
    diags: &mut Vec<Diagnostic>,
) {
    if r.width_bits == 0 && r.cells > 0 {
        push_sram_error(r.name, span.first, SramError::ZeroWidth, diags);
    }
    let per_stage_bytes = r.sram_bytes().div_ceil(span.count as u64);
    let per_stage_alus = (r.alus as u64).div_ceil(span.count as u64);
    let per_stage_hash = (r.index_hash_bits as u64).div_ceil(span.count as u64);
    for s in span.first..=span.last() {
        let Some(u) = stages.get_mut(s as usize) else {
            continue;
        };
        u.units.push(r.name);
        u.sram_blocks += per_stage_bytes.div_ceil(chip.sram_block_bytes());
        u.salus += per_stage_alus;
        u.hash_bits += per_stage_hash;
    }
}

/// SRC015 from a typed SRAM sizing failure.
fn push_sram_error(name: &'static str, stage: u32, e: SramError, diags: &mut Vec<Diagnostic>) {
    diags.push(Diagnostic {
        rule: Rule::ZeroWidth,
        severity: Severity::Error,
        unit: Some(name),
        stage: Some(stage),
        measured: 0,
        budget: 0,
        message: format!("'{name}' SRAM demand is not computable: {e}"),
    });
}

/// One per-stage budget rule: (rule, resource label, accessor, budget).
type StageCheck = (Rule, &'static str, fn(&StageUsage) -> u64, u64);

/// SRC002–SRC007: compare each stage's accumulated demand against the chip
/// budgets. Over budget is an error; above 90% utilization is a warning.
fn check_stage_budgets(chip: &ChipSpec, stages: &[StageUsage], diags: &mut Vec<Diagnostic>) {
    let checks: [StageCheck; 6] = [
        (
            Rule::SramStageBudget,
            "SRAM blocks",
            |u| u.sram_blocks,
            chip.sram_blocks_per_stage as u64,
        ),
        (
            Rule::TcamStageBudget,
            "TCAM bytes",
            |u| u.tcam_bytes,
            chip.tcam_bytes_per_stage,
        ),
        (
            Rule::CrossbarStageBudget,
            "crossbar bits",
            |u| u.crossbar_bits,
            chip.crossbar_bits_per_stage as u64,
        ),
        (
            Rule::HashBudget,
            "hash bits",
            |u| u.hash_bits,
            chip.hash_bits_per_stage as u64,
        ),
        (
            Rule::SaluStageBudget,
            "stateful ALUs",
            |u| u.salus,
            chip.salus_per_stage as u64,
        ),
        (
            Rule::VliwStageBudget,
            "VLIW slots",
            |u| u.vliw,
            chip.vliw_slots_per_stage as u64,
        ),
    ];
    for (i, u) in stages.iter().enumerate() {
        for (rule, what, measure, budget) in &checks {
            let used = measure(u);
            if used == 0 {
                continue;
            }
            let severity = if used > *budget {
                Severity::Error
            } else if used * 10 > budget * 9 {
                Severity::Warning
            } else {
                continue;
            };
            diags.push(Diagnostic {
                rule: *rule,
                severity,
                unit: None,
                stage: Some(i as u32),
                measured: used,
                budget: *budget,
                message: format!(
                    "stage {i} {} {what} of a {budget}-budget ({} in: {})",
                    if severity == Severity::Error {
                        format!("needs {used}")
                    } else {
                        format!("is at {used}")
                    },
                    u.units.len(),
                    u.units.join(" "),
                ),
            });
        }
    }
}

/// SRC008 (PHV) and the pipeline-total hash pool (SRC005 with no stage):
/// per-stage hash checks miss selector/learning hashes that are not pinned
/// to a stage, so the total is checked against the whole-pipeline pool.
fn check_phv_and_hash_totals(
    prog: &PipelineProgram,
    chip: &ChipSpec,
    stages: &[StageUsage],
    diags: &mut Vec<Diagnostic>,
) {
    if prog.metadata_bits > chip.phv_bits {
        diags.push(Diagnostic {
            rule: Rule::PhvBudget,
            severity: Severity::Error,
            unit: None,
            stage: None,
            measured: prog.metadata_bits as u64,
            budget: chip.phv_bits as u64,
            message: format!(
                "program carries {} PHV bits; the chip has {}",
                prog.metadata_bits, chip.phv_bits
            ),
        });
    }
    let placed: u64 = stages.iter().map(|u| u.hash_bits).sum();
    let total = placed + prog.selector_hash_bits as u64;
    let pool = chip.hash_bits_per_stage as u64 * chip.stages as u64;
    if total > pool {
        diags.push(Diagnostic {
            rule: Rule::HashBudget,
            severity: Severity::Error,
            unit: None,
            stage: None,
            measured: total,
            budget: pool,
            message: format!(
                "program consumes {total} hash bits ({placed} placed + {} selector) \
                 of a {pool}-bit pipeline pool",
                prog.selector_hash_bits
            ),
        });
    }
}

/// SRC011–SRC013: dependency edges must reference known units, be acyclic,
/// and be realizable in the declared stage placement (consumer starts
/// strictly after producer ends — RMT match dependency).
fn check_deps(prog: &PipelineProgram, diags: &mut Vec<Diagnostic>) {
    // Unit name -> (first, last) stage.
    let lookup = |name: &str| -> Option<(u32, u32)> {
        prog.tables
            .iter()
            .find(|t| t.name == name)
            .map(|t| (t.first_stage, t.last_stage()))
            .or_else(|| {
                prog.registers
                    .iter()
                    .find(|r| r.name == name)
                    .map(|r| (r.first_stage, r.last_stage()))
            })
    };

    for d in &prog.deps {
        let (Some(before), Some(after)) = (lookup(d.before), lookup(d.after)) else {
            let missing = if lookup(d.before).is_none() {
                d.before
            } else {
                d.after
            };
            diags.push(Diagnostic {
                rule: Rule::DepUnknown,
                severity: Severity::Error,
                unit: None,
                stage: None,
                measured: 0,
                budget: 0,
                message: format!(
                    "dependency {} -> {} references unknown unit '{missing}'",
                    d.before, d.after
                ),
            });
            continue;
        };
        if after.0 <= before.1 {
            diags.push(Diagnostic {
                rule: Rule::DepOrder,
                severity: Severity::Error,
                unit: None,
                stage: Some(after.0),
                measured: after.0 as u64,
                budget: before.1 as u64 + 1,
                message: format!(
                    "'{}' (ends stage {}) must resolve before '{}' (starts stage {}); \
                     a match dependency needs a strictly later stage",
                    d.before, before.1, d.after, after.0
                ),
            });
        }
    }

    // Cycle detection over the name graph (Kahn's algorithm); nodes are the
    // endpoints that resolved.
    let mut nodes: Vec<&'static str> = Vec::new();
    for d in &prog.deps {
        for n in [d.before, d.after] {
            if lookup(n).is_some() && !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    let edges: Vec<(&'static str, &'static str)> = prog
        .deps
        .iter()
        .filter(|d| lookup(d.before).is_some() && lookup(d.after).is_some())
        .map(|d| (d.before, d.after))
        .collect();
    let mut indegree: Vec<usize> = nodes
        .iter()
        .map(|n| edges.iter().filter(|(_, to)| to == n).count())
        .collect();
    let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| indegree[i] == 0).collect();
    let mut removed = 0usize;
    while let Some(i) = queue.pop() {
        removed += 1;
        let from = nodes[i];
        for (f, to) in &edges {
            if *f != from {
                continue;
            }
            if let Some(j) = nodes.iter().position(|n| n == to) {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    if removed < nodes.len() {
        let cyclic: Vec<&str> = (0..nodes.len())
            .filter(|&i| indegree[i] > 0)
            .map(|i| nodes[i])
            .collect();
        diags.push(Diagnostic {
            rule: Rule::DepCycle,
            severity: Severity::Error,
            unit: None,
            stage: None,
            measured: cyclic.len() as u64,
            budget: 0,
            message: format!(
                "dependency graph has a cycle through: {}",
                cyclic.join(" -> ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_class_is_the_papers_2016_generation() {
        let c = ChipSpec::tofino_class();
        let mb = c.sram_bytes_total() as f64 / (1024.0 * 1024.0);
        assert!((50.0..=110.0).contains(&mb), "{mb} MB");
        assert_eq!(c.sram_block_bytes(), 1024 * 14);
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let rules = [
            Rule::StageCount,
            Rule::SramStageBudget,
            Rule::TcamStageBudget,
            Rule::CrossbarStageBudget,
            Rule::HashBudget,
            Rule::SaluStageBudget,
            Rule::VliwStageBudget,
            Rule::PhvBudget,
            Rule::ExactReplication,
            Rule::RegisterSingleStage,
            Rule::DepUnknown,
            Rule::DepOrder,
            Rule::DepCycle,
            Rule::DigestWidth,
            Rule::ZeroWidth,
            Rule::PipeCount,
        ];
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert!(id.starts_with("SRC"), "{id}");
            assert!(!ids[i + 1..].contains(id), "duplicate id {id}");
        }
    }

    #[test]
    fn diagnostics_render_location_and_numbers() {
        let d = Diagnostic {
            rule: Rule::SramStageBudget,
            severity: Severity::Error,
            unit: Some("ConnTable"),
            stage: Some(3),
            measured: 700,
            budget: 600,
            message: "over".into(),
        };
        let text = d.to_string();
        assert!(text.contains("SRC002"));
        assert!(text.contains("error"));
        assert!(text.contains("[unit ConnTable]"));
        assert!(text.contains("[stage 3]"));
        assert!(text.contains("(700/600)"));
    }
}
