//! Register arrays — transactional stateful memory (§4.1).
//!
//! "The update on a counter by a previous packet can be immediately seen and
//! modified by the right next packet, i.e., read-check-modify-write is done
//! in one clock cycle time." P4 exposes this as register arrays; SilkRoad
//! builds its TransitTable bloom filter on them.
//!
//! The model is a plain cell array with an operation counter, so tests and
//! the resource model can account for stateful-ALU usage. Because the whole
//! simulator is single-threaded and event-ordered, the one-cycle
//! transactional semantics hold trivially: operations are applied in packet
//! order with no interleaving.

/// A register array of `cells` cells, each `width_bits` wide (1..=64).
#[derive(Clone, Debug)]
pub struct RegisterArray {
    cells: Vec<u64>,
    width_bits: u8,
    ops: u64,
}

impl RegisterArray {
    /// Allocate an array. Width is clamped to 1..=64.
    pub fn new(cells: usize, width_bits: u8) -> RegisterArray {
        RegisterArray {
            cells: vec![0; cells],
            width_bits: width_bits.clamp(1, 64),
            ops: 0,
        }
    }

    fn mask(&self) -> u64 {
        if self.width_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell width in bits.
    pub fn width_bits(&self) -> u8 {
        self.width_bits
    }

    /// Total size in bytes (resource accounting).
    pub fn size_bytes(&self) -> usize {
        (self.cells.len() * self.width_bits as usize).div_ceil(8)
    }

    /// Operations performed since construction (stateful-ALU activity).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Read a cell.
    pub fn read(&mut self, idx: usize) -> u64 {
        self.ops += 1;
        self.cells[idx] & self.mask()
    }

    /// Write a cell (truncated to width).
    pub fn write(&mut self, idx: usize, value: u64) {
        self.ops += 1;
        let m = self.mask();
        self.cells[idx] = value & m;
    }

    /// One-cycle read-check-modify-write: apply `f` to the current value,
    /// store the result, and return the *previous* value. This is the
    /// primitive a P4 `RegisterAction` provides.
    pub fn rmw<F: FnOnce(u64) -> u64>(&mut self, idx: usize, f: F) -> u64 {
        self.ops += 1;
        let m = self.mask();
        let old = self.cells[idx] & m;
        self.cells[idx] = f(old) & m;
        old
    }

    /// Saturating increment, returning the previous value (counter idiom).
    pub fn incr(&mut self, idx: usize) -> u64 {
        let m = self.mask();
        self.rmw(idx, |v| if v == m { v } else { v + 1 })
    }

    /// Zero every cell.
    pub fn clear(&mut self) {
        self.ops += 1;
        self.cells.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut r = RegisterArray::new(8, 32);
        r.write(3, 0xdead_beef);
        assert_eq!(r.read(3), 0xdead_beef);
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn width_truncates() {
        let mut r = RegisterArray::new(2, 8);
        r.write(0, 0x1ff);
        assert_eq!(r.read(0), 0xff);
    }

    #[test]
    fn rmw_returns_old_value() {
        let mut r = RegisterArray::new(1, 16);
        r.write(0, 10);
        let old = r.rmw(0, |v| v + 5);
        assert_eq!(old, 10);
        assert_eq!(r.read(0), 15);
    }

    #[test]
    fn incr_saturates() {
        let mut r = RegisterArray::new(1, 2);
        for _ in 0..10 {
            r.incr(0);
        }
        assert_eq!(r.read(0), 3);
    }

    #[test]
    fn ops_counted_and_clear() {
        let mut r = RegisterArray::new(4, 64);
        r.write(0, 1);
        r.read(0);
        r.incr(1);
        assert_eq!(r.ops(), 3);
        r.clear();
        assert_eq!(r.read(1), 0);
        assert_eq!(r.size_bytes(), 32);
    }

    #[test]
    fn width_clamped() {
        assert_eq!(RegisterArray::new(1, 0).width_bits(), 1);
        assert_eq!(RegisterArray::new(1, 99).width_bits(), 64);
    }
}
