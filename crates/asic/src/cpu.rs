//! The switch management CPU (§4.1, §5.2).
//!
//! Entry insertion into cuckoo exact-match tables is a software job: the
//! CPU reads learning-filter batches, runs the BFS move search, and sends
//! the move sequence to the ASIC over PCI-E. The paper measured/projected a
//! sustainable rate of **200 K insertions per second** — this number is the
//! root cause of the PCC problem (pending connections) and is therefore a
//! first-class model parameter.
//!
//! The model is a single work queue drained at a fixed per-job cost. Jobs
//! carry an opaque payload; completion times are exposed so the simulator
//! can schedule "entry became visible in ConnTable" events.

use sr_types::{Duration, Nanos};
use std::collections::VecDeque;

/// Configuration of the CPU model.
#[derive(Clone, Copy, Debug)]
pub struct SwitchCpuConfig {
    /// Sustained insertion throughput, jobs per second (paper: 200_000).
    pub insertions_per_sec: u64,
}

impl Default for SwitchCpuConfig {
    fn default() -> Self {
        SwitchCpuConfig {
            insertions_per_sec: 200_000,
        }
    }
}

impl SwitchCpuConfig {
    /// Time one insertion occupies the CPU.
    pub fn job_cost(&self) -> Duration {
        match 1_000_000_000u64.checked_div(self.insertions_per_sec) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::MAX,
        }
    }
}

/// A queued CPU job with its computed completion time.
#[derive(Clone, Debug)]
pub struct CpuJob<P> {
    /// Opaque payload (e.g. the learn event to install).
    pub payload: P,
    /// When the CPU finishes this job and the table entry becomes visible.
    pub completes_at: Nanos,
}

/// The switch CPU work queue.
pub struct SwitchCpu<P> {
    cfg: SwitchCpuConfig,
    queue: VecDeque<CpuJob<P>>,
    /// The time through which the CPU is already committed.
    busy_until: Nanos,
    completed_jobs: u64,
}

impl<P> SwitchCpu<P> {
    /// Create an idle CPU.
    pub fn new(cfg: SwitchCpuConfig) -> SwitchCpu<P> {
        SwitchCpu {
            cfg,
            queue: VecDeque::new(),
            busy_until: Nanos::ZERO,
            completed_jobs: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SwitchCpuConfig {
        &self.cfg
    }

    /// Jobs waiting or in flight.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Total jobs completed (popped) so far.
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// When the CPU will next be idle.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Submit one job at `now`; returns its completion time.
    pub fn submit(&mut self, payload: P, now: Nanos) -> Nanos {
        let start = self.busy_until.max(now);
        let done = start.saturating_add(self.cfg.job_cost());
        self.busy_until = done;
        self.queue.push_back(CpuJob {
            payload,
            completes_at: done,
        });
        done
    }

    /// Submit a batch in order; returns the completion time of the last job.
    pub fn submit_batch<I: IntoIterator<Item = P>>(
        &mut self,
        jobs: I,
        now: Nanos,
    ) -> Option<Nanos> {
        let mut last = None;
        for j in jobs {
            last = Some(self.submit(j, now));
        }
        last
    }

    /// Completion time of the earliest unfinished job, if any.
    pub fn next_completion(&self) -> Option<Nanos> {
        self.queue.front().map(|j| j.completes_at)
    }

    /// Pop every job whose completion time has passed.
    pub fn pop_completed(&mut self, now: Nanos) -> Vec<CpuJob<P>> {
        let mut done = Vec::new();
        while let Some(j) = self.queue.front() {
            if j.completes_at <= now {
                done.push(self.queue.pop_front().expect("front exists"));
                self.completed_jobs += 1;
            } else {
                break;
            }
        }
        done
    }

    /// The recycled-buffer form of [`SwitchCpu::pop_completed`]: feed each
    /// completed job to `f` in FIFO order without materialising a `Vec`.
    /// Returns the number of jobs popped — the batched install drain pulls
    /// completions through this into a buffer it reuses across batches.
    pub fn pop_completed_with<F: FnMut(CpuJob<P>)>(&mut self, now: Nanos, mut f: F) -> usize {
        let mut n = 0usize;
        while let Some(j) = self.queue.front() {
            if j.completes_at <= now {
                f(self.queue.pop_front().expect("front exists"));
                self.completed_jobs += 1;
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Whether all submitted jobs have completed by `now`.
    pub fn drained(&self, now: Nanos) -> bool {
        self.queue
            .front()
            .map(|j| j.completes_at > now)
            .unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(rate: u64) -> SwitchCpu<u32> {
        SwitchCpu::new(SwitchCpuConfig {
            insertions_per_sec: rate,
        })
    }

    #[test]
    fn single_job_takes_inverse_rate() {
        let mut c = cpu(200_000); // 5 µs per job
        let done = c.submit(1, Nanos::ZERO);
        assert_eq!(done, Nanos::from_micros(5));
    }

    #[test]
    fn jobs_serialize() {
        let mut c = cpu(200_000);
        let d1 = c.submit(1, Nanos::ZERO);
        let d2 = c.submit(2, Nanos::ZERO);
        assert_eq!(d2, d1 + Duration::from_micros(5));
        assert_eq!(c.backlog(), 2);
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut c = cpu(200_000);
        c.submit(1, Nanos::ZERO);
        // Submitted long after the first finished: starts at `now`.
        let d = c.submit(2, Nanos::from_millis(10));
        assert_eq!(d, Nanos::from_millis(10) + Duration::from_micros(5));
    }

    #[test]
    fn pop_completed_respects_time() {
        let mut c = cpu(200_000);
        c.submit(1, Nanos::ZERO);
        c.submit(2, Nanos::ZERO);
        assert!(c.pop_completed(Nanos::from_micros(4)).is_empty());
        let first = c.pop_completed(Nanos::from_micros(5));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].payload, 1);
        let second = c.pop_completed(Nanos::from_micros(100));
        assert_eq!(second.len(), 1);
        assert_eq!(c.completed_jobs(), 2);
        assert!(c.drained(Nanos::from_micros(100)));
    }

    #[test]
    fn callback_pop_matches_vec_pop() {
        let mut a = cpu(200_000);
        let mut b = cpu(200_000);
        for i in 0..4 {
            a.submit(i, Nanos::ZERO);
            b.submit(i, Nanos::ZERO);
        }
        let now = Nanos::from_micros(12); // 2 of 4 jobs done
        let via_vec: Vec<u32> = a
            .pop_completed(now)
            .into_iter()
            .map(|j| j.payload)
            .collect();
        let mut via_cb = Vec::new();
        assert_eq!(b.pop_completed_with(now, |j| via_cb.push(j.payload)), 2);
        assert_eq!(via_vec, via_cb);
        assert_eq!(a.completed_jobs(), b.completed_jobs());
        assert_eq!(a.backlog(), b.backlog());
    }

    #[test]
    fn batch_submission() {
        let mut c = cpu(1_000_000); // 1 µs per job
        let last = c.submit_batch(vec![1, 2, 3], Nanos::ZERO).unwrap();
        assert_eq!(last, Nanos::from_micros(3));
        assert!(c.submit_batch(Vec::<u32>::new(), Nanos::ZERO).is_none());
    }

    #[test]
    fn sustained_rate_matches_config() {
        // Submit 1000 jobs; the makespan must be 1000/rate seconds.
        let mut c = cpu(200_000);
        let mut last = Nanos::ZERO;
        for i in 0..1000 {
            last = c.submit(i, Nanos::ZERO);
        }
        assert_eq!(last, Nanos::from_millis(5)); // 1000 / 200k = 5 ms
    }

    #[test]
    fn zero_rate_never_completes() {
        let mut c = cpu(0);
        let done = c.submit(1, Nanos::ZERO);
        assert_eq!(done, Nanos::MAX);
        assert!(c.pop_completed(Nanos::from_secs(1_000_000)).is_empty());
    }
}
