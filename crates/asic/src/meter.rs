//! Two-rate three-color meters — RFC 4115 (§5.2).
//!
//! SilkRoad attaches a meter to each VIP for performance isolation: traffic
//! within the committed rate is marked green, bursts up to the excess rate
//! yellow, and everything beyond red (dropped under DDoS/flash crowd). The
//! paper measured <1 % average marking error at 10 Gbps; the `repro meters`
//! harness reproduces that experiment against this implementation.

use sr_types::{Duration, Nanos};

/// Marking colors of RFC 4115.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MeterColor {
    /// Within committed rate (CIR/CBS).
    Green,
    /// Excess but within EIR/EBS.
    Yellow,
    /// Out of profile — candidate for dropping.
    Red,
}

/// Meter configuration.
#[derive(Clone, Copy, Debug)]
pub struct MeterConfig {
    /// Committed information rate, bytes per second.
    pub cir_bps: u64,
    /// Committed burst size, bytes.
    pub cbs: u64,
    /// Excess information rate, bytes per second.
    pub eir_bps: u64,
    /// Excess burst size, bytes.
    pub ebs: u64,
}

impl MeterConfig {
    /// Convenience: rates in gigabits per second with `burst_ms` worth of
    /// committed burst.
    pub fn gbps(cir_gbps: f64, eir_gbps: f64, burst_ms: f64) -> MeterConfig {
        let cir = (cir_gbps * 1e9 / 8.0) as u64;
        let eir = (eir_gbps * 1e9 / 8.0) as u64;
        MeterConfig {
            cir_bps: cir,
            cbs: ((cir as f64) * burst_ms / 1e3) as u64,
            eir_bps: eir,
            ebs: ((eir as f64) * burst_ms / 1e3) as u64,
        }
    }
}

/// One RFC 4115 trTCM instance (color-blind mode).
///
/// ```
/// use sr_asic::{Meter, MeterColor, MeterConfig};
/// use sr_types::Nanos;
/// let mut m = Meter::new(MeterConfig { cir_bps: 1_000, cbs: 1_500, eir_bps: 0, ebs: 0 });
/// assert_eq!(m.mark(Nanos::ZERO, 1_500), MeterColor::Green); // burst fits
/// assert_eq!(m.mark(Nanos::ZERO, 1_500), MeterColor::Red);   // bucket empty
/// ```
#[derive(Clone, Debug)]
pub struct Meter {
    cfg: MeterConfig,
    /// Committed token bucket, bytes.
    tc: f64,
    /// Excess token bucket, bytes.
    te: f64,
    last: Nanos,
}

impl Meter {
    /// Create a meter with full buckets at time zero.
    pub fn new(cfg: MeterConfig) -> Meter {
        Meter {
            tc: cfg.cbs as f64,
            te: cfg.ebs as f64,
            cfg,
            last: Nanos::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MeterConfig {
        &self.cfg
    }

    fn refill(&mut self, now: Nanos) {
        let dt = now.since(self.last).as_secs_f64();
        self.last = now;
        self.tc = (self.tc + self.cfg.cir_bps as f64 * dt).min(self.cfg.cbs as f64);
        self.te = (self.te + self.cfg.eir_bps as f64 * dt).min(self.cfg.ebs as f64);
    }

    /// Mark one packet of `len` bytes arriving at `now`.
    pub fn mark(&mut self, now: Nanos, len: u32) -> MeterColor {
        self.refill(now);
        let len = len as f64;
        if self.tc >= len {
            self.tc -= len;
            MeterColor::Green
        } else if self.te >= len {
            self.te -= len;
            MeterColor::Yellow
        } else {
            MeterColor::Red
        }
    }

    /// Run a constant-bit-rate stream through the meter and return the
    /// (green, yellow, red) byte totals — the §5.2 accuracy experiment.
    pub fn measure_cbr(
        &mut self,
        start: Nanos,
        rate_bps: u64,
        pkt_len: u32,
        duration: Duration,
    ) -> (u64, u64, u64) {
        let mut g = 0u64;
        let mut y = 0u64;
        let mut r = 0u64;
        if rate_bps == 0 || pkt_len == 0 {
            return (0, 0, 0);
        }
        let gap = Duration::from_secs_f64(pkt_len as f64 / rate_bps as f64);
        let mut t = start;
        let end = start + duration;
        while t < end {
            match self.mark(t, pkt_len) {
                MeterColor::Green => g += pkt_len as u64,
                MeterColor::Yellow => y += pkt_len as u64,
                MeterColor::Red => r += pkt_len as u64,
            }
            t += gap;
        }
        (g, y, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_cir_all_green() {
        // 1 GB/s committed; send 0.5 GB/s.
        let mut m = Meter::new(MeterConfig {
            cir_bps: 1_000_000_000,
            cbs: 100_000,
            eir_bps: 0,
            ebs: 0,
        });
        let (g, y, r) = m.measure_cbr(Nanos::ZERO, 500_000_000, 1000, Duration::from_millis(100));
        assert!(y == 0 && r == 0, "y={y} r={r}");
        assert!(g > 0);
    }

    #[test]
    fn between_rates_marks_yellow() {
        // CIR 1 GB/s, EIR 1 GB/s; send 1.5 GB/s: expect ~2/3 green, ~1/3 yellow.
        let mut m = Meter::new(MeterConfig {
            cir_bps: 1_000_000_000,
            cbs: 10_000,
            eir_bps: 1_000_000_000,
            ebs: 10_000,
        });
        let (g, y, r) = m.measure_cbr(Nanos::ZERO, 1_500_000_000, 1000, Duration::from_millis(200));
        let total = (g + y + r) as f64;
        assert!(r as f64 / total < 0.02, "unexpected red {r}");
        let gf = g as f64 / total;
        assert!((gf - 2.0 / 3.0).abs() < 0.05, "green fraction {gf}");
    }

    #[test]
    fn above_both_rates_marks_red() {
        // CIR 1 GB/s, EIR 0.5 GB/s; send 3 GB/s: expect ~half red.
        let mut m = Meter::new(MeterConfig {
            cir_bps: 1_000_000_000,
            cbs: 10_000,
            eir_bps: 500_000_000,
            ebs: 10_000,
        });
        let (g, y, r) = m.measure_cbr(Nanos::ZERO, 3_000_000_000, 1000, Duration::from_millis(200));
        let total = (g + y + r) as f64;
        let rf = r as f64 / total;
        assert!((rf - 0.5).abs() < 0.05, "red fraction {rf}");
        assert!(g > 0 && y > 0);
    }

    #[test]
    fn marking_error_below_one_percent() {
        // The paper's §5.2 result: <1% average error across thresholds.
        // Send 10 Gbps for 100ms with CIR 4 Gbps / EIR 4 Gbps.
        let mut m = Meter::new(MeterConfig::gbps(4.0, 4.0, 1.0));
        let (g, y, r) = m.measure_cbr(
            Nanos::ZERO,
            (10e9 / 8.0) as u64,
            1500,
            Duration::from_millis(100),
        );
        let total = (g + y + r) as f64;
        let g_err = (g as f64 / total - 0.4).abs();
        let y_err = (y as f64 / total - 0.4).abs();
        let r_err = (r as f64 / total - 0.2).abs();
        // Allow the burst allowance to shift fractions slightly; average
        // error must stay below 1%.
        let avg = (g_err + y_err + r_err) / 3.0;
        assert!(avg < 0.01, "avg marking error {avg}");
    }

    #[test]
    fn burst_consumes_bucket_then_settles() {
        let mut m = Meter::new(MeterConfig {
            cir_bps: 1_000,
            cbs: 5_000,
            eir_bps: 0,
            ebs: 0,
        });
        // Instant burst of 5 packets x 1000B at t=0 drains CBS.
        let mut greens = 0;
        for _ in 0..6 {
            if m.mark(Nanos::ZERO, 1000) == MeterColor::Green {
                greens += 1;
            }
        }
        assert_eq!(greens, 5);
        // After 1 second only 1000 tokens refill: one more green.
        assert_eq!(m.mark(Nanos::from_secs(1), 1000), MeterColor::Green);
        assert_eq!(m.mark(Nanos::from_secs(1), 1000), MeterColor::Red);
    }

    #[test]
    fn degenerate_inputs() {
        let mut m = Meter::new(MeterConfig::gbps(1.0, 1.0, 1.0));
        assert_eq!(
            m.measure_cbr(Nanos::ZERO, 0, 1000, Duration::from_secs(1)),
            (0, 0, 0)
        );
        assert_eq!(
            m.measure_cbr(Nanos::ZERO, 1000, 0, Duration::from_secs(1)),
            (0, 0, 0)
        );
    }
}
