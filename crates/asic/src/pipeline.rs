//! Declarative match-action pipeline programs.
//!
//! A [`PipelineProgram`] describes a P4 program at the level of detail a
//! compiler's resource report exposes: its tables (match kind, key/action
//! widths, entry counts, stages), register arrays, and carried metadata.
//! [`PipelineProgram::resource_usage`] derives the chip resources the
//! program consumes under RMT-style allocation rules — the structured
//! source behind the Table 2 reproduction (`resources`).
//!
//! Two reference programs are provided: [`PipelineProgram::baseline_switch_p4`],
//! approximating the open-source `switch.p4` L2/L3/ACL/QoS program the
//! paper uses as its baseline (~5000 lines of P4), and
//! [`PipelineProgram::silkroad`], the paper's ~400-line addition.

use crate::resources::ResourceUsage;
use crate::sram::SramSpec;

/// How a table matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact match — cuckoo-hashed SRAM.
    Exact,
    /// Ternary/LPM — TCAM.
    Ternary,
}

/// One table declaration.
#[derive(Clone, Debug)]
pub struct TableDecl {
    /// Name (resource reports index by table).
    pub name: &'static str,
    /// Match kind.
    pub kind: MatchKind,
    /// Match-key bits presented to the crossbar.
    pub key_bits: u32,
    /// Match field bits actually *stored* per entry (digest compression
    /// makes this smaller than `key_bits` for SilkRoad's ConnTable).
    pub stored_key_bits: u32,
    /// Action data bits per entry.
    pub action_bits: u32,
    /// Provisioned entries.
    pub entries: u64,
    /// First physical pipeline stage the table occupies (0-based).
    pub first_stage: u32,
    /// Physical stages the table spans (exact tables replicate their key
    /// and hash per stage).
    pub stages: u32,
    /// VLIW action slots the table's actions occupy.
    pub action_slots: u32,
}

impl TableDecl {
    /// SRAM bytes (exact tables; zero for ternary).
    pub fn sram_bytes(&self) -> u64 {
        if self.kind != MatchKind::Exact {
            return 0;
        }
        SramSpec {
            entry_bits: self.stored_key_bits + self.action_bits + 6,
        }
        .bytes_for(self.entries)
    }

    /// TCAM bytes (ternary tables store value+mask).
    pub fn tcam_bytes(&self) -> u64 {
        if self.kind != MatchKind::Ternary {
            return 0;
        }
        self.entries * (2 * self.key_bits as u64).div_ceil(8)
    }

    /// Hash output bits: one bucket address per spanned stage.
    pub fn hash_bits(&self) -> u32 {
        if self.kind != MatchKind::Exact || self.entries == 0 {
            return 0;
        }
        let per_stage = (self.entries as f64 / self.stages.max(1) as f64 / 4.0)
            .log2()
            .ceil()
            .max(1.0) as u32;
        self.stages.max(1) * per_stage
    }

    /// Crossbar bits: the key is presented once per spanned stage.
    pub fn crossbar_bits(&self) -> u32 {
        self.key_bits * self.stages.max(1)
    }

    /// Last physical stage the table occupies (inclusive).
    pub fn last_stage(&self) -> u32 {
        self.first_stage + self.stages.max(1) - 1
    }
}

/// One register-array declaration.
#[derive(Clone, Debug)]
pub struct RegisterDecl {
    /// Name.
    pub name: &'static str,
    /// Cells.
    pub cells: u64,
    /// Cell width.
    pub width_bits: u32,
    /// Stateful ALUs the access program needs (a read-modify-write path
    /// per hash way for a bloom filter).
    pub alus: u32,
    /// Hash bits used to index the array.
    pub index_hash_bits: u32,
    /// First physical pipeline stage the array occupies (0-based).
    pub first_stage: u32,
    /// Physical stages the array spans. A group of independent arrays
    /// (counters, meters) may spread; a *transactional* array may not.
    pub stages: u32,
    /// Whether accesses are transactional (one-cycle
    /// read-check-modify-write, §4.1). A transactional array must fit a
    /// single stage — the ALU cannot see state in another stage within one
    /// packet time. The TransitTable bloom filter requires this.
    pub transactional: bool,
}

impl RegisterDecl {
    /// SRAM bytes backing the array.
    pub fn sram_bytes(&self) -> u64 {
        (self.cells * self.width_bits as u64).div_ceil(8)
    }

    /// Last physical stage the array occupies (inclusive).
    pub fn last_stage(&self) -> u32 {
        self.first_stage + self.stages.max(1) - 1
    }
}

/// An ordering constraint between two pipeline units: `after` consumes a
/// result (match outcome, metadata write, register verdict) produced by
/// `before`, so `after` must start in a strictly later physical stage —
/// RMT's "match dependency", the tightest of its dependency classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableDependency {
    /// The producing unit (table or register name).
    pub before: &'static str,
    /// The consuming unit.
    pub after: &'static str,
}

/// A full pipeline program.
#[derive(Clone, Debug)]
pub struct PipelineProgram {
    /// Program name.
    pub name: &'static str,
    /// Tables.
    pub tables: Vec<TableDecl>,
    /// Register arrays.
    pub registers: Vec<RegisterDecl>,
    /// Ordering constraints between units ([`TableDependency`]); the
    /// pipeline verifier checks they are realizable in the declared
    /// placement and acyclic.
    pub deps: Vec<TableDependency>,
    /// Metadata bits carried between stages (PHV).
    pub metadata_bits: u32,
    /// Extra hash bits for non-table units (ECMP/LAG selectors, learning).
    pub selector_hash_bits: u32,
    /// Pipes the program is replicated into. Each pipe carries a full
    /// copy, so per-stage budgets are checked against a *single* pipe;
    /// [`PipelineProgram::chip_usage`] scales to chip-wide demand.
    pub pipes: u32,
}

impl PipelineProgram {
    /// Replicate the program across `pipes` pipes (builder style).
    pub fn with_pipes(mut self, pipes: u32) -> PipelineProgram {
        self.pipes = pipes;
        self
    }

    /// Chip-wide resources: the per-pipe [`Self::resource_usage`]
    /// replicated across every pipe the program occupies.
    pub fn chip_usage(&self) -> ResourceUsage {
        self.resource_usage().replicated(self.pipes)
    }

    /// Derive the chip resources this program consumes *in one pipe*.
    pub fn resource_usage(&self) -> ResourceUsage {
        let crossbar: u32 = self.tables.iter().map(|t| t.crossbar_bits()).sum();
        let sram: u64 = self.tables.iter().map(|t| t.sram_bytes()).sum::<u64>()
            + self.registers.iter().map(|r| r.sram_bytes()).sum::<u64>();
        let tcam: u64 = self.tables.iter().map(|t| t.tcam_bytes()).sum();
        let vliw: u32 = self.tables.iter().map(|t| t.action_slots).sum();
        let hash: u32 = self.tables.iter().map(|t| t.hash_bits()).sum::<u32>()
            + self
                .registers
                .iter()
                .map(|r| r.index_hash_bits)
                .sum::<u32>()
            + self.selector_hash_bits;
        let salu: u32 = self.registers.iter().map(|r| r.alus).sum();
        ResourceUsage {
            crossbar_bits: crossbar as f64,
            sram_bytes: sram as f64,
            tcam_bytes: tcam as f64,
            vliw_actions: vliw as f64,
            hash_bits: hash as f64,
            stateful_alus: salu as f64,
            phv_bits: self.metadata_bits as f64,
        }
    }

    /// An approximation of the baseline `switch.p4` (L2/L3/ACL/QoS) at the
    /// granularity its published resource reports use.
    pub fn baseline_switch_p4() -> PipelineProgram {
        PipelineProgram {
            name: "switch.p4",
            tables: vec![
                TableDecl {
                    name: "smac",
                    kind: MatchKind::Exact,
                    key_bits: 60, // mac + vlan
                    stored_key_bits: 60,
                    action_bits: 16,
                    entries: 320_000,
                    first_stage: 0,
                    stages: 2,
                    action_slots: 6,
                },
                TableDecl {
                    name: "dmac",
                    kind: MatchKind::Exact,
                    key_bits: 60,
                    stored_key_bits: 60,
                    action_bits: 20,
                    entries: 320_000,
                    first_stage: 2,
                    stages: 2,
                    action_slots: 8,
                },
                TableDecl {
                    name: "ipv4_host",
                    kind: MatchKind::Exact,
                    key_bits: 44, // vrf + ipv4
                    stored_key_bits: 44,
                    action_bits: 20,
                    entries: 260_000,
                    first_stage: 4,
                    stages: 2,
                    action_slots: 10,
                },
                TableDecl {
                    name: "ipv6_host",
                    kind: MatchKind::Exact,
                    key_bits: 140,
                    stored_key_bits: 140,
                    action_bits: 20,
                    entries: 120_000,
                    first_stage: 4,
                    stages: 2,
                    action_slots: 10,
                },
                TableDecl {
                    name: "ipv4_lpm",
                    kind: MatchKind::Ternary,
                    key_bits: 44,
                    stored_key_bits: 44,
                    action_bits: 20,
                    entries: 120_000,
                    first_stage: 6,
                    stages: 1,
                    action_slots: 8,
                },
                TableDecl {
                    name: "ipv6_lpm",
                    kind: MatchKind::Ternary,
                    key_bits: 140,
                    stored_key_bits: 140,
                    action_bits: 20,
                    entries: 16_000,
                    first_stage: 7,
                    stages: 1,
                    action_slots: 8,
                },
                TableDecl {
                    name: "acl",
                    kind: MatchKind::Ternary,
                    key_bits: 240,
                    stored_key_bits: 240,
                    action_bits: 24,
                    entries: 12_000,
                    first_stage: 8,
                    stages: 1,
                    action_slots: 12,
                },
                TableDecl {
                    name: "nexthop",
                    kind: MatchKind::Exact,
                    key_bits: 16,
                    stored_key_bits: 16,
                    action_bits: 96, // rewrite info
                    entries: 65_536,
                    first_stage: 8,
                    stages: 1,
                    action_slots: 14,
                },
                TableDecl {
                    name: "rewrite+qos",
                    kind: MatchKind::Exact,
                    key_bits: 24,
                    stored_key_bits: 24,
                    action_bits: 64,
                    entries: 32_768,
                    first_stage: 9,
                    stages: 1,
                    action_slots: 14,
                },
            ],
            registers: vec![RegisterDecl {
                name: "counters+meters",
                cells: 300_000,
                width_bits: 64,
                alus: 18,
                index_hash_bits: 0,
                first_stage: 4,
                stages: 6,
                // Independent counter/meter arrays spread across stages;
                // no cross-array transaction is needed.
                transactional: false,
            }],
            deps: vec![
                // L2 learn feeds the L2 forward decision.
                TableDependency {
                    before: "smac",
                    after: "dmac",
                },
                // Route resolution feeds nexthop, which feeds rewrite.
                TableDependency {
                    before: "ipv4_host",
                    after: "nexthop",
                },
                TableDependency {
                    before: "ipv6_host",
                    after: "nexthop",
                },
                TableDependency {
                    before: "ipv4_lpm",
                    after: "nexthop",
                },
                TableDependency {
                    before: "ipv6_lpm",
                    after: "nexthop",
                },
                TableDependency {
                    before: "nexthop",
                    after: "rewrite+qos",
                },
                TableDependency {
                    before: "acl",
                    after: "rewrite+qos",
                },
            ],
            // Parsed headers + bridge metadata in flight.
            metadata_bits: 3_250,
            // ECMP/LAG selectors + MAC learning digests.
            selector_hash_bits: 144,
            pipes: 1,
        }
    }

    /// The SilkRoad addition (§5.1: "~400 lines of P4... all the tables and
    /// metadata needed").
    #[allow(clippy::too_many_arguments)] // mirrors the P4 program's table parameters 1:1
    pub fn silkroad(
        conn_entries: u64,
        conn_stages: u32,
        digest_bits: u32,
        version_bits: u32,
        vips: u64,
        dip_pool_rows: u64,
        dip_action_bits: u32,
        transit_bytes: u64,
        transit_hashes: u32,
    ) -> PipelineProgram {
        PipelineProgram {
            name: "silkroad",
            tables: vec![
                TableDecl {
                    name: "ConnTable",
                    kind: MatchKind::Exact,
                    key_bits: 104, // IPv4 5-tuple presented to the hash units
                    stored_key_bits: digest_bits,
                    action_bits: version_bits,
                    entries: conn_entries,
                    first_stage: 0,
                    stages: conn_stages,
                    action_slots: 4,
                },
                TableDecl {
                    name: "VIPTable",
                    kind: MatchKind::Exact,
                    key_bits: 152,
                    stored_key_bits: 152,
                    action_bits: 2 * version_bits,
                    entries: vips,
                    first_stage: conn_stages + 1,
                    stages: 1,
                    action_slots: 3,
                },
                TableDecl {
                    name: "DIPPoolTable",
                    kind: MatchKind::Exact,
                    key_bits: 32 + version_bits,
                    stored_key_bits: 32 + version_bits,
                    action_bits: dip_action_bits,
                    entries: dip_pool_rows,
                    first_stage: conn_stages + 2,
                    stages: 1,
                    action_slots: 6,
                },
                TableDecl {
                    name: "LearnTable",
                    kind: MatchKind::Exact,
                    key_bits: 16,
                    stored_key_bits: 16,
                    action_bits: 8,
                    entries: 4_096,
                    first_stage: conn_stages + 3,
                    stages: 1,
                    action_slots: 4,
                },
            ],
            registers: vec![RegisterDecl {
                name: "TransitTable",
                cells: transit_bytes * 8,
                width_bits: 1,
                alus: 2 * transit_hashes, // set path + test path per hash way
                index_hash_bits: 11 * transit_hashes,
                first_stage: conn_stages,
                stages: 1,
                // One-cycle read-check-modify-write membership (§4.3): must
                // live in a single stage.
                transactional: true,
            }],
            deps: vec![
                // The paper's miss-path order (§4.3): ConnTable lookup →
                // TransitTable membership verdict → VIPTable version read →
                // DIPPoolTable resolution.
                TableDependency {
                    before: "ConnTable",
                    after: "TransitTable",
                },
                TableDependency {
                    before: "TransitTable",
                    after: "VIPTable",
                },
                TableDependency {
                    before: "VIPTable",
                    after: "DIPPoolTable",
                },
            ],
            // digest(16) + old/new version(12) + transit flag + DIP select
            // hash carried in PHV.
            metadata_bits: 32,
            selector_hash_bits: 64, // the in-pool DIP selection hash
            pipes: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::bytes_to_mb;

    #[test]
    fn baseline_magnitudes_plausible() {
        let u = PipelineProgram::baseline_switch_p4().resource_usage();
        // switch.p4-class programs use ~10-20 MB of table SRAM, a couple MB
        // of TCAM, dozens of VLIW slots, and O(1kb) crossbar/hash.
        assert!(
            (8.0..25.0).contains(&bytes_to_mb(u.sram_bytes as u64)),
            "{u:?}"
        );
        assert!(
            (1.0..5.0).contains(&bytes_to_mb(u.tcam_bytes as u64)),
            "{u:?}"
        );
        assert!((60.0..120.0).contains(&u.vliw_actions), "{u:?}");
        assert!((250.0..1500.0).contains(&u.hash_bits), "{u:?}");
        assert!((800.0..2500.0).contains(&u.crossbar_bits), "{u:?}");
        assert_eq!(u.stateful_alus, 18.0);
    }

    #[test]
    fn silkroad_program_matches_paper_shape() {
        let u = PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
            .resource_usage();
        // No TCAM at all; one SRAM word per 4 connections dominates memory.
        assert_eq!(u.tcam_bytes, 0.0);
        assert!(u.sram_bytes > 3.4e6 && u.sram_bytes < 4.5e6, "{u:?}");
        assert_eq!(u.stateful_alus, 8.0);
        assert!(u.phv_bits < 64.0);
    }

    #[test]
    fn conn_table_dominates_and_scales() {
        let small = PipelineProgram::silkroad(100_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
            .resource_usage();
        let big = PipelineProgram::silkroad(10_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
            .resource_usage();
        assert!(big.sram_bytes > 30.0 * small.sram_bytes);
        // Everything else is geometry-fixed.
        assert!(small.hash_bits > 0.0);
        assert_eq!(small.vliw_actions, big.vliw_actions);
        assert_eq!(small.crossbar_bits, big.crossbar_bits);
    }

    #[test]
    fn digest_width_changes_storage_not_crossbar() {
        let d16 = PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
            .resource_usage();
        let d24 = PipelineProgram::silkroad(1_000_000, 4, 24, 6, 1_000, 4_000, 144, 256, 4)
            .resource_usage();
        assert!(d24.sram_bytes > d16.sram_bytes);
        assert_eq!(d24.crossbar_bits, d16.crossbar_bits);
    }

    #[test]
    fn table_decl_rules() {
        let t = TableDecl {
            name: "t",
            kind: MatchKind::Exact,
            key_bits: 100,
            stored_key_bits: 16,
            action_bits: 6,
            entries: 1_000_000,
            first_stage: 0,
            stages: 4,
            action_slots: 4,
        };
        assert_eq!(t.tcam_bytes(), 0);
        assert_eq!(t.crossbar_bits(), 400);
        // 28-bit entries, 4/word: 250K words = 3.5 MB.
        assert_eq!(t.sram_bytes(), 3_500_000);
        assert!(t.hash_bits() >= 4 * 16);

        let tern = TableDecl {
            kind: MatchKind::Ternary,
            ..t
        };
        assert_eq!(tern.sram_bytes(), 0);
        assert_eq!(tern.hash_bits(), 0);
        assert_eq!(tern.tcam_bytes(), 1_000_000 * 25);
    }
}
