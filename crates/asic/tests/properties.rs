//! Property-based tests for the ASIC substrate.

use proptest::prelude::*;
use sr_asic::{
    LearningFilter, LearningFilterConfig, Meter, MeterColor, MeterConfig, RegisterArray, SwitchCpu,
    SwitchCpuConfig,
};
use sr_types::{Duration, Nanos};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The meter never marks more green bytes than CIR×time + CBS, nor
    /// more green+yellow than (CIR+EIR)×time + CBS + EBS — the token
    /// conservation law of RFC 4115.
    #[test]
    fn meter_token_conservation(
        cir_mbps in 1u64..5_000,
        eir_mbps in 0u64..5_000,
        offered_mbps in 1u64..20_000,
        pkt in 64u32..9000,
        ms in 1u64..200,
    ) {
        let cfg = MeterConfig {
            cir_bps: cir_mbps * 125_000, // Mbit/s -> bytes/s
            cbs: 64_000,
            eir_bps: eir_mbps * 125_000,
            ebs: 64_000,
        };
        let mut m = Meter::new(cfg);
        let (g, y, _r) = m.measure_cbr(
            Nanos::ZERO,
            offered_mbps * 125_000,
            pkt,
            Duration::from_millis(ms),
        );
        let secs = ms as f64 / 1e3;
        let g_cap = cfg.cir_bps as f64 * secs + cfg.cbs as f64 + pkt as f64;
        prop_assert!(g as f64 <= g_cap, "green {g} over cap {g_cap}");
        let gy_cap = g_cap + cfg.eir_bps as f64 * secs + cfg.ebs as f64 + pkt as f64;
        prop_assert!((g + y) as f64 <= gy_cap, "g+y {} over cap {gy_cap}", g + y);
    }

    /// Offered load below CIR is never marked red.
    #[test]
    fn meter_under_cir_never_red(
        cir_mbps in 10u64..5_000,
        pkt in 64u32..1500,
        ms in 1u64..100,
    ) {
        let cfg = MeterConfig {
            cir_bps: cir_mbps * 125_000,
            cbs: 9_000,
            eir_bps: 0,
            ebs: 0,
        };
        let mut m = Meter::new(cfg);
        // Offer exactly half the committed rate.
        let (_, _, r) = m.measure_cbr(
            Nanos::ZERO,
            cir_mbps * 125_000 / 2,
            pkt,
            Duration::from_millis(ms),
        );
        prop_assert_eq!(r, 0);
    }

    /// A single packet against a full bucket is green iff it fits.
    #[test]
    fn meter_first_packet(cbs in 0u64..4000, len in 1u32..4000) {
        let mut m = Meter::new(MeterConfig {
            cir_bps: 1,
            cbs,
            eir_bps: 0,
            ebs: 0,
        });
        let color = m.mark(Nanos::ZERO, len);
        if (len as u64) <= cbs {
            prop_assert_eq!(color, MeterColor::Green);
        } else {
            prop_assert_eq!(color, MeterColor::Red);
        }
    }

    /// The learning filter never buffers duplicates and never exceeds its
    /// capacity, for any key sequence.
    #[test]
    fn learning_filter_bounded_and_deduped(
        keys in proptest::collection::vec(any::<u16>(), 1..300),
        capacity in 1usize..64,
    ) {
        let mut f: LearningFilter<()> = LearningFilter::new(LearningFilterConfig {
            capacity,
            timeout: Duration::from_millis(1),
        });
        for (i, k) in keys.iter().enumerate() {
            f.learn(&k.to_be_bytes(), (), Nanos(i as u64));
            prop_assert!(f.len() <= capacity);
        }
        let batch = f.drain_now();
        let mut seen = std::collections::HashSet::new();
        for ev in &batch {
            prop_assert!(seen.insert(ev.key), "duplicate in batch");
        }
    }

    /// CPU completions are FIFO and spaced at least one job-cost apart.
    #[test]
    fn cpu_completions_fifo(
        submits in proptest::collection::vec(0u64..1_000_000, 1..100),
        rate in 1_000u64..1_000_000,
    ) {
        let mut cpu: SwitchCpu<usize> = SwitchCpu::new(SwitchCpuConfig {
            insertions_per_sec: rate,
        });
        let mut ts = submits.clone();
        ts.sort_unstable();
        for (i, t) in ts.iter().enumerate() {
            cpu.submit(i, Nanos(*t));
        }
        let done = cpu.pop_completed(Nanos::MAX);
        prop_assert_eq!(done.len(), ts.len());
        let cost = 1_000_000_000 / rate;
        for w in done.windows(2) {
            prop_assert!(w[0].payload < w[1].payload, "out of order");
            prop_assert!(
                w[1].completes_at.0 >= w[0].completes_at.0 + cost,
                "closer than one job cost"
            );
        }
    }

    /// Register arrays respect their width for any op sequence.
    #[test]
    fn register_width_respected(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..100),
        width in 1u8..=64,
    ) {
        let mut r = RegisterArray::new(16, width);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        for (idx, v) in ops {
            let i = (idx % 16) as usize;
            r.write(i, v);
            prop_assert!(r.read(i) <= mask);
            let old = r.rmw(i, |x| x.wrapping_add(v));
            prop_assert!(old <= mask);
            prop_assert!(r.read(i) <= mask);
        }
    }
}
