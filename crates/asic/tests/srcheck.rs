//! srcheck golden and mutation tests.
//!
//! Golden: both reference programs (`switch.p4` baseline, SilkRoad's
//! paper-default addition) must verify clean on the Tofino-class chip.
//! Mutation: four deliberately broken layouts must each be rejected with
//! the documented rule id (see the rule catalog in `DESIGN.md`).

use sr_asic::{ChipSpec, PipelineProgram, Rule, Severity, TableDependency};

fn reference_silkroad() -> PipelineProgram {
    // The paper-default parameterization used across the repro driver:
    // 1M connections over 4 stages, 16-bit digest, 6-bit version, 1K VIPs,
    // 4K DIP-pool rows, 144-bit DIP action, 256 B transit bloom, 4 hashes.
    PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
}

#[test]
fn golden_baseline_switch_p4_is_placeable() {
    let report = PipelineProgram::baseline_switch_p4().check(&ChipSpec::tofino_class());
    assert!(
        report.is_placeable(),
        "baseline switch.p4 must verify clean:\n{}",
        report.render()
    );
    // The baseline sits comfortably inside the chip: no warnings either.
    assert!(
        report.diagnostics.is_empty(),
        "unexpected diagnostics:\n{}",
        report.render()
    );
}

#[test]
fn golden_silkroad_reference_is_placeable() {
    let report = reference_silkroad().check(&ChipSpec::tofino_class());
    assert!(
        report.is_placeable(),
        "reference SilkRoad program must verify clean:\n{}",
        report.render()
    );
    // The TransitTable's 8 stateful ALUs saturate one stage's ALU budget —
    // the checker surfaces that as a utilization warning, not an error
    // (Table 2: stateful ALUs are SilkRoad's most-stressed resource).
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity != Severity::Error));
}

#[test]
fn golden_report_renders_placement_rows() {
    let report = reference_silkroad().check(&ChipSpec::tofino_class());
    let text = report.render();
    for unit in ["ConnTable", "TransitTable", "VIPTable", "DIPPoolTable"] {
        assert!(text.contains(unit), "report missing {unit}:\n{text}");
    }
    assert!(text.contains("PLACEABLE"), "{text}");
}

#[test]
fn mutation_oversized_conntable_rejected_src002() {
    // 40M connections over 4 stages wants ~2442 SRAM blocks per stage of a
    // 600-block budget. An RMT back end refuses this; so do we.
    let prog = PipelineProgram::silkroad(40_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4);
    let report = prog.check(&ChipSpec::tofino_class());
    assert!(!report.is_placeable());
    assert!(
        report.has_error(Rule::SramStageBudget),
        "expected SRC002:\n{}",
        report.render()
    );
}

#[test]
fn mutation_transactional_register_spanning_stages_rejected_src010() {
    let mut prog = reference_silkroad();
    prog.registers[0].stages = 2;
    let report = prog.check(&ChipSpec::tofino_class());
    assert!(!report.is_placeable());
    assert!(
        report.has_error(Rule::RegisterSingleStage),
        "expected SRC010:\n{}",
        report.render()
    );
}

#[test]
fn mutation_dependency_cycle_rejected_src013() {
    let mut prog = reference_silkroad();
    // Close the paper's miss-path chain into a loop:
    // ConnTable -> TransitTable -> VIPTable -> DIPPoolTable -> ConnTable.
    prog.deps.push(TableDependency {
        before: "DIPPoolTable",
        after: "ConnTable",
    });
    let report = prog.check(&ChipSpec::tofino_class());
    assert!(!report.is_placeable());
    assert!(
        report.has_error(Rule::DepCycle),
        "expected SRC013:\n{}",
        report.render()
    );
    // The bogus edge also runs backwards in the placement.
    assert!(report.has_error(Rule::DepOrder));
}

#[test]
fn mutation_digest_wider_than_key_rejected_src014() {
    let mut prog = reference_silkroad();
    // A 200-bit stored match field cannot be derived from a 104-bit key.
    prog.tables[0].stored_key_bits = 200;
    let report = prog.check(&ChipSpec::tofino_class());
    assert!(!report.is_placeable());
    assert!(
        report.has_error(Rule::DigestWidth),
        "expected SRC014:\n{}",
        report.render()
    );
}

#[test]
fn mutation_unknown_dependency_rejected_src011() {
    let mut prog = reference_silkroad();
    prog.deps.push(TableDependency {
        before: "NoSuchTable",
        after: "VIPTable",
    });
    let report = prog.check(&ChipSpec::tofino_class());
    assert!(report.has_error(Rule::DepUnknown));
}

#[test]
fn golden_silkroad_replicated_across_all_pipes_is_placeable() {
    // The multi-pipe engine replicates the program into every pipe; the
    // per-stage budgets are per-pipe, so a clean 1-pipe layout stays clean
    // at the chip's full pipe count — and the chip-wide resource roll-up
    // scales linearly with the replication factor.
    let chip = ChipSpec::tofino_class();
    let prog = reference_silkroad().with_pipes(chip.pipes);
    let report = prog.check(&chip);
    assert!(
        report.is_placeable(),
        "pipe-replicated SilkRoad must verify clean:\n{}",
        report.render()
    );
    assert_eq!(report.pipes, chip.pipes);
    let one = reference_silkroad().chip_usage();
    let all = prog.chip_usage();
    assert_eq!(all.sram_bytes, one.sram_bytes * chip.pipes as f64);
}

#[test]
fn mutation_too_many_pipes_rejected_src016() {
    let chip = ChipSpec::tofino_class();
    let report = reference_silkroad().with_pipes(chip.pipes + 4).check(&chip);
    assert!(!report.is_placeable());
    assert!(
        report.has_error(Rule::PipeCount),
        "expected SRC016:\n{}",
        report.render()
    );
}

#[test]
fn mutation_zero_pipes_rejected_src016() {
    let report = reference_silkroad()
        .with_pipes(0)
        .check(&ChipSpec::tofino_class());
    assert!(report.has_error(Rule::PipeCount));
}

#[test]
fn mutation_overlong_span_rejected_src001() {
    let mut prog = reference_silkroad();
    prog.tables[0].first_stage = 10;
    prog.tables[0].stages = 4; // stages 10..13 of a 12-stage pipeline
    let report = prog.check(&ChipSpec::tofino_class());
    assert!(report.has_error(Rule::StageCount));
}
