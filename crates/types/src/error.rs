//! Shared error type for configuration-level failures.
//!
//! Hot data-plane paths never return these; they are for construction-time
//! validation (table sizing, version-width bounds, topology wiring).

use std::fmt;

/// Errors raised while constructing or configuring simulation components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A numeric parameter was outside its valid range.
    OutOfRange {
        /// Which parameter.
        what: &'static str,
        /// Human-readable constraint, e.g. "1..=16".
        constraint: &'static str,
        /// The offending value.
        got: u64,
    },
    /// A referenced entity does not exist.
    NotFound {
        /// Entity kind, e.g. "VIP".
        what: &'static str,
    },
    /// A capacity limit was exceeded.
    CapacityExceeded {
        /// What filled up, e.g. "ConnTable".
        what: &'static str,
    },
    /// An operation was attempted in an invalid state.
    InvalidState {
        /// Description of the violated precondition.
        what: &'static str,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::OutOfRange {
                what,
                constraint,
                got,
            } => {
                write!(f, "{what} out of range (must be {constraint}, got {got})")
            }
            TypeError::NotFound { what } => write!(f, "{what} not found"),
            TypeError::CapacityExceeded { what } => write!(f, "{what} capacity exceeded"),
            TypeError::InvalidState { what } => write!(f, "invalid state: {what}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TypeError::OutOfRange {
            what: "digest_bits",
            constraint: "8..=32",
            got: 64,
        };
        assert_eq!(
            e.to_string(),
            "digest_bits out of range (must be 8..=32, got 64)"
        );
        assert_eq!(
            TypeError::NotFound { what: "VIP" }.to_string(),
            "VIP not found"
        );
        assert_eq!(
            TypeError::CapacityExceeded { what: "ConnTable" }.to_string(),
            "ConnTable capacity exceeded"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TypeError::NotFound { what: "x" });
    }
}
