//! Wire-facing frame-view types.
//!
//! The `sr-wire` crate parses real Ethernet/IP/TCP frames; the rest of the
//! workspace only needs the *shape* of what it found — where each header
//! starts, which family and L4 protocol the frame carries — plus the
//! vocabulary for carrying a [`ForwardDecision`](crate) back onto the wire
//! (rewrite vs encapsulate). Those shared types live here so `sr-core` can
//! map decisions to rewrite operations without depending on the codec.

use crate::addr::{AddrFamily, Dip};
use crate::tuple::Protocol;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;
/// Ethernet II header length (dst MAC, src MAC, EtherType).
pub const ETH_HDR_LEN: usize = 14;
/// IPv4 header length without options (IHL = 5).
pub const IPV4_HDR_LEN: usize = 20;
/// IPv6 fixed header length (extension headers unsupported).
pub const IPV6_HDR_LEN: usize = 40;
/// TCP header length without options (data offset = 5).
pub const TCP_HDR_LEN: usize = 20;
/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;
/// IP protocol number of IPv4-in-IPv4 encapsulation (RFC 2003).
pub const IPPROTO_IPIP: u8 = 4;
/// IP protocol / next-header number of an encapsulated IPv6 packet.
pub const IPPROTO_IPV6: u8 = 41;

/// Byte offsets of one parsed frame's headers, as produced by the
/// `sr-wire` zero-copy parser.
///
/// All offsets are from the start of the frame. `u16` suffices: the pcap
/// snap length (65535) bounds every capture this workspace reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameView {
    /// Offset of the IP header (after Ethernet: 14).
    pub l3: u16,
    /// Offset of the L4 (TCP/UDP) header.
    pub l4: u16,
    /// Offset of the L4 payload.
    pub payload: u16,
    /// Address family of the IP header.
    pub family: AddrFamily,
    /// L4 protocol.
    pub proto: Protocol,
    /// Total frame length in bytes (Ethernet header included).
    pub frame_len: u32,
}

impl FrameView {
    /// Length of the IP header in bytes.
    pub fn ip_hdr_len(&self) -> usize {
        self.l4 as usize - self.l3 as usize
    }

    /// Length of the L4 header in bytes.
    pub fn l4_hdr_len(&self) -> usize {
        self.payload as usize - self.l4 as usize
    }
}

/// How a VIP packet is carried to its DIP on the wire (§4 of the paper:
/// the switch either NATs the destination or tunnels toward the DIP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewriteMode {
    /// L4 NAT: rewrite the destination address and port in place, with
    /// incremental (RFC 1624) checksum updates.
    Nat,
    /// IP-in-IP encapsulation: prepend an outer IP header addressed to
    /// the DIP; the inner packet is carried unmodified.
    Encap,
}

impl RewriteMode {
    /// Stable lowercase label (JSON reports, CLI flags).
    pub fn label(&self) -> &'static str {
        match self {
            RewriteMode::Nat => "nat",
            RewriteMode::Encap => "encap",
        }
    }
}

/// One concrete rewrite the data plane asks the wire layer to perform:
/// carry this frame to `dip` using `mode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RewriteOp {
    /// The chosen backend.
    pub dip: Dip,
    /// Rewrite vs encapsulate.
    pub mode: RewriteMode,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn view_header_lengths() {
        let v = FrameView {
            l3: 14,
            l4: 34,
            payload: 54,
            family: AddrFamily::V4,
            proto: Protocol::Tcp,
            frame_len: 800,
        };
        assert_eq!(v.ip_hdr_len(), IPV4_HDR_LEN);
        assert_eq!(v.l4_hdr_len(), TCP_HDR_LEN);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(RewriteMode::Nat.label(), "nat");
        assert_eq!(RewriteMode::Encap.label(), "encap");
    }

    #[test]
    fn rewrite_op_is_copy_eq() {
        let op = RewriteOp {
            dip: Dip(Addr::v4(10, 0, 0, 1, 20)),
            mode: RewriteMode::Nat,
        };
        let op2 = op;
        assert_eq!(op, op2);
    }
}
