//! L4 connection identity: the 5-tuple.

use crate::addr::{Addr, AddrFamily};
use std::fmt;

/// L4 protocol carried in the 5-tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Protocol {
    /// TCP (protocol number 6). All load-balanced paper traffic is TCP.
    Tcp,
    /// UDP (protocol number 17). Supported for completeness.
    Udp,
}

impl Protocol {
    /// IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }
}

/// The classic connection 5-tuple: source endpoint, destination endpoint
/// (the VIP for inbound traffic), and protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Client source endpoint.
    pub src: Addr,
    /// Destination endpoint — the VIP before NAT, the DIP after.
    pub dst: Addr,
    /// L4 protocol.
    pub proto: Protocol,
}

impl FiveTuple {
    /// Construct a TCP 5-tuple.
    pub const fn tcp(src: Addr, dst: Addr) -> FiveTuple {
        FiveTuple {
            src,
            dst,
            proto: Protocol::Tcp,
        }
    }

    /// The address family. Mixed-family tuples do not occur in practice;
    /// the destination side (the VIP) is authoritative for sizing.
    pub fn family(&self) -> AddrFamily {
        self.dst.family()
    }

    /// Canonical byte encoding used as hash input everywhere (connection
    /// digests, cuckoo hash functions, bloom filters, ECMP). Stable across
    /// platforms so that experiment outputs are reproducible.
    pub fn key_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.family().five_tuple_bytes());
        self.src.encode_into(&mut out);
        self.dst.encode_into(&mut out);
        out.push(self.proto.number());
        out
    }

    /// Byte length of the match key for this tuple's family.
    pub fn key_len(&self) -> usize {
        self.family().five_tuple_bytes()
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.proto {
            Protocol::Tcp => "TCP",
            Protocol::Udp => "UDP",
        };
        write!(f, "{} -> {} {}", self.src, self.dst, p)
    }
}

impl fmt::Debug for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src_port: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, src_port), Addr::v4(20, 0, 0, 1, 80))
    }

    #[test]
    fn key_bytes_length_matches_family() {
        assert_eq!(t(1234).key_bytes().len(), 13);
        assert_eq!(t(1234).key_len(), 13);
        let v6 = FiveTuple::tcp(Addr::v6_indexed(0, 1, 999), Addr::v6_indexed(1, 2, 80));
        assert_eq!(v6.key_bytes().len(), 37);
    }

    #[test]
    fn key_bytes_distinguish_tuples() {
        assert_ne!(t(1).key_bytes(), t(2).key_bytes());
        let udp = FiveTuple {
            proto: Protocol::Udp,
            ..t(1)
        };
        assert_ne!(t(1).key_bytes(), udp.key_bytes());
    }

    #[test]
    fn key_bytes_deterministic() {
        assert_eq!(t(42).key_bytes(), t(42).key_bytes());
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(t(1234).to_string(), "1.2.3.4:1234 -> 20.0.0.1:80 TCP");
    }
}
