//! Network addresses: VIPs and DIPs.
//!
//! The paper's memory arithmetic depends on the address family: an IPv6
//! 5-tuple key is 37 bytes and a DIP+port action is 18 bytes, versus
//! 13 and 6 bytes for IPv4 (§4.2). We therefore carry the family explicitly.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Address family of a VIP/DIP, which determines table entry sizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AddrFamily {
    /// 4-byte addresses; 5-tuple key = 13 B, DIP action = 6 B.
    V4,
    /// 16-byte addresses; 5-tuple key = 37 B, DIP action = 18 B.
    V6,
}

impl AddrFamily {
    /// Bytes of one bare address.
    pub const fn addr_bytes(self) -> usize {
        match self {
            AddrFamily::V4 => 4,
            AddrFamily::V6 => 16,
        }
    }

    /// Bytes of the full 5-tuple match key (src+dst addr, src+dst port, proto).
    pub const fn five_tuple_bytes(self) -> usize {
        2 * self.addr_bytes() + 2 + 2 + 1
    }

    /// Bytes of a DIP + port action datum.
    pub const fn dip_action_bytes(self) -> usize {
        self.addr_bytes() + 2
    }
}

/// An IP address + L4 port endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// The IP address.
    pub ip: IpAddr,
    /// The L4 port.
    pub port: u16,
}

impl Addr {
    /// Construct an IPv4 endpoint.
    pub const fn v4(a: u8, b: u8, c: u8, d: u8, port: u16) -> Addr {
        Addr {
            ip: IpAddr::V4(Ipv4Addr::new(a, b, c, d)),
            port,
        }
    }

    /// Construct an IPv6 endpoint from eight 16-bit segments.
    #[allow(clippy::too_many_arguments)]
    pub const fn v6(s: [u16; 8], port: u16) -> Addr {
        Addr {
            ip: IpAddr::V6(Ipv6Addr::new(
                s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
            )),
            port,
        }
    }

    /// Synthesize a distinct IPv4 endpoint from an index (test/workload helper).
    pub fn v4_indexed(base: u8, idx: u32, port: u16) -> Addr {
        let b = idx.to_be_bytes();
        Addr::v4(base, b[1], b[2], b[3], port)
    }

    /// Synthesize a distinct IPv6 endpoint from an index (test/workload helper).
    pub fn v6_indexed(base: u16, idx: u32, port: u16) -> Addr {
        Addr::v6(
            [0xfd00, base, 0, 0, 0, 0, (idx >> 16) as u16, idx as u16],
            port,
        )
    }

    /// Address family of this endpoint.
    pub fn family(&self) -> AddrFamily {
        match self.ip {
            IpAddr::V4(_) => AddrFamily::V4,
            IpAddr::V6(_) => AddrFamily::V6,
        }
    }

    /// Canonical byte encoding: address octets followed by the big-endian
    /// port. Used as hash input so that simulation hashes are reproducible
    /// across platforms.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self.ip {
            IpAddr::V4(ip) => out.extend_from_slice(&ip.octets()),
            IpAddr::V6(ip) => out.extend_from_slice(&ip.octets()),
        }
        out.extend_from_slice(&self.port.to_be_bytes());
    }

    /// Encode into a fixed buffer starting at `at`, returning the number of
    /// bytes written. Same byte layout as [`Addr::encode_into`] but without
    /// touching the heap; `out` must have at least 18 bytes of headroom.
    pub fn encode_to(&self, out: &mut [u8], at: usize) -> usize {
        let n = match self.ip {
            IpAddr::V4(ip) => {
                out[at..at + 4].copy_from_slice(&ip.octets());
                4
            }
            IpAddr::V6(ip) => {
                out[at..at + 16].copy_from_slice(&ip.octets());
                16
            }
        };
        out[at + n..at + n + 2].copy_from_slice(&self.port.to_be_bytes());
        n + 2
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ip {
            IpAddr::V4(ip) => write!(f, "{}:{}", ip, self.port),
            IpAddr::V6(ip) => write!(f, "[{}]:{}", ip, self.port),
        }
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A virtual IP — the externally visible service endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vip(pub Addr);

/// A direct IP — one backend server endpoint in a VIP's DIP pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dip(pub Addr);

impl Vip {
    /// Address family of the VIP.
    pub fn family(&self) -> AddrFamily {
        self.0.family()
    }
}

impl Dip {
    /// Address family of the DIP.
    pub fn family(&self) -> AddrFamily {
        self.0.family()
    }
}

impl fmt::Display for Vip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIP {}", self.0)
    }
}

impl fmt::Debug for Vip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIP({})", self.0)
    }
}

impl fmt::Display for Dip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIP {}", self.0)
    }
}

impl fmt::Debug for Dip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIP({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_sizes_match_paper() {
        // §4.2: IPv6 5-tuple is 37 bytes, DIP+port action is 18 bytes.
        assert_eq!(AddrFamily::V6.five_tuple_bytes(), 37);
        assert_eq!(AddrFamily::V6.dip_action_bytes(), 18);
        // IPv4 for comparison.
        assert_eq!(AddrFamily::V4.five_tuple_bytes(), 13);
        assert_eq!(AddrFamily::V4.dip_action_bytes(), 6);
    }

    #[test]
    fn indexed_addresses_are_distinct() {
        let a = Addr::v4_indexed(10, 1, 80);
        let b = Addr::v4_indexed(10, 2, 80);
        assert_ne!(a, b);
        let c = Addr::v6_indexed(1, 1, 80);
        let d = Addr::v6_indexed(1, 2, 80);
        assert_ne!(c, d);
        assert_eq!(c.family(), AddrFamily::V6);
    }

    #[test]
    fn encode_is_family_length() {
        let mut buf = Vec::new();
        Addr::v4(1, 2, 3, 4, 80).encode_into(&mut buf);
        assert_eq!(buf.len(), 6);
        assert_eq!(&buf, &[1, 2, 3, 4, 0, 80]);

        buf.clear();
        Addr::v6_indexed(0, 7, 443).encode_into(&mut buf);
        assert_eq!(buf.len(), 18);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::v4(20, 0, 0, 1, 80).to_string(), "20.0.0.1:80");
        let v6 = Addr::v6([0xfd00, 0, 0, 0, 0, 0, 0, 1], 443);
        assert_eq!(v6.to_string(), "[fd00::1]:443");
        assert_eq!(
            Vip(Addr::v4(20, 0, 0, 1, 80)).to_string(),
            "VIP 20.0.0.1:80"
        );
    }
}
