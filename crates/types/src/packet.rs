//! Per-packet metadata as seen by a load balancer's data plane.
//!
//! The simulation is flow-level, but PCC hinges on *which packets arrive
//! while table state is in flux*, so the data-plane API is per-packet: the
//! simulator materialises only the packets that matter (first packet,
//! packets inside update/insertion windows, periodic keepalives).

use crate::tuple::FiveTuple;
use std::fmt;

/// TCP flag bits relevant to the load balancer.
///
/// SilkRoad inspects SYN to detect digest false positives (§4.2): a SYN that
/// *hits* ConnTable indicates a new connection colliding with an existing
/// entry, and is redirected to switch software.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags (mid-stream data packet).
    pub const NONE: TcpFlags = TcpFlags(0);
    /// SYN bit.
    pub const SYN: TcpFlags = TcpFlags(1 << 1);
    /// FIN bit.
    pub const FIN: TcpFlags = TcpFlags(1 << 0);
    /// ACK bit.
    pub const ACK: TcpFlags = TcpFlags(1 << 4);
    /// RST bit.
    pub const RST: TcpFlags = TcpFlags(1 << 2);

    /// Whether the SYN bit is set.
    pub fn is_syn(self) -> bool {
        self.0 & Self::SYN.0 != 0
    }

    /// Whether the FIN bit is set.
    pub fn is_fin(self) -> bool {
        self.0 & Self::FIN.0 != 0
    }

    /// Whether the RST bit is set.
    pub fn is_rst(self) -> bool {
        self.0 & Self::RST.0 != 0
    }

    /// Union of two flag sets.
    pub fn with(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.is_syn() {
            s.push('S');
        }
        if self.is_fin() {
            s.push('F');
        }
        if self.is_rst() {
            s.push('R');
        }
        if self.0 & Self::ACK.0 != 0 {
            s.push('A');
        }
        if s.is_empty() {
            s.push('.');
        }
        write!(f, "[{s}]")
    }
}

/// Metadata of one packet presented to a load balancer. `Eq` so replay
/// harnesses can compare parsed-from-wire packet streams against
/// trace-generated ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketMeta {
    /// Connection identity.
    pub tuple: FiveTuple,
    /// TCP flags (all-zero for UDP).
    pub flags: TcpFlags,
    /// Wire length in bytes, for throughput accounting.
    pub len: u32,
}

impl PacketMeta {
    /// A connection-opening SYN packet (the paper's 52-byte minimum frame).
    pub fn syn(tuple: FiveTuple) -> PacketMeta {
        PacketMeta {
            tuple,
            flags: TcpFlags::SYN,
            len: 52,
        }
    }

    /// A mid-stream data packet.
    pub fn data(tuple: FiveTuple, len: u32) -> PacketMeta {
        PacketMeta {
            tuple,
            flags: TcpFlags::ACK,
            len,
        }
    }

    /// A connection-closing FIN packet.
    pub fn fin(tuple: FiveTuple) -> PacketMeta {
        PacketMeta {
            tuple,
            flags: TcpFlags::FIN.with(TcpFlags::ACK),
            len: 52,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn tup() -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 1, 1, 1, 1000), Addr::v4(20, 0, 0, 1, 80))
    }

    #[test]
    fn flag_predicates() {
        assert!(TcpFlags::SYN.is_syn());
        assert!(!TcpFlags::SYN.is_fin());
        assert!(TcpFlags::FIN.with(TcpFlags::ACK).is_fin());
        assert!(TcpFlags::RST.is_rst());
        assert!(!TcpFlags::NONE.is_syn());
    }

    #[test]
    fn packet_constructors() {
        assert!(PacketMeta::syn(tup()).flags.is_syn());
        assert!(PacketMeta::fin(tup()).flags.is_fin());
        assert!(!PacketMeta::data(tup(), 1460).flags.is_syn());
        assert_eq!(PacketMeta::syn(tup()).len, 52);
    }

    #[test]
    fn flags_debug() {
        assert_eq!(format!("{:?}", TcpFlags::SYN), "[S]");
        assert_eq!(format!("{:?}", TcpFlags::NONE), "[.]");
        assert_eq!(format!("{:?}", TcpFlags::FIN.with(TcpFlags::ACK)), "[FA]");
    }
}
