//! Lightweight identifier newtypes.
//!
//! The simulator refers to entities by dense integer ids; the id types are
//! distinct so that a `VipId` can never be passed where a `DipId` is meant.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{self}")
            }
        }
    };
}

id_type!(
    /// Identifies a VIP within a cluster.
    VipId,
    "vip"
);
id_type!(
    /// Identifies a DIP (backend server endpoint) within a cluster.
    DipId,
    "dip"
);
id_type!(
    /// Identifies a cluster in the fleet.
    ClusterId,
    "cluster"
);
id_type!(
    /// Identifies a switch in a topology.
    SwitchId,
    "sw"
);

/// Monotone per-simulation connection sequence number. 64-bit: paper-scale
/// traces run to hundreds of millions of connections.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ConnSeq(pub u64);

impl fmt::Display for ConnSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

impl fmt::Debug for ConnSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A DIP-pool version number as stored in ConnTable action data.
///
/// The paper uses a 6-bit field (64 versions, ring-buffer reuse); we keep
/// the width configurable but bound it to 16 bits so a version always fits
/// in the action-data arithmetic of the memory model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PoolVersion(pub u16);

impl PoolVersion {
    /// First version ever assigned to a VIP.
    pub const FIRST: PoolVersion = PoolVersion(0);

    /// Next version in the ring of size `2^bits`.
    pub fn next_in_ring(self, bits: u8) -> PoolVersion {
        let ring = 1u32 << bits.min(16);
        PoolVersion((((self.0 as u32) + 1) % ring) as u16)
    }
}

impl fmt::Display for PoolVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl fmt::Debug for PoolVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(VipId(3).to_string(), "vip3");
        assert_eq!(DipId(7).to_string(), "dip7");
        assert_eq!(ClusterId(0).to_string(), "cluster0");
        assert_eq!(SwitchId(12).to_string(), "sw12");
        assert_eq!(ConnSeq(9).to_string(), "conn9");
    }

    #[test]
    fn version_ring_wraps() {
        let mut v = PoolVersion::FIRST;
        for _ in 0..63 {
            v = v.next_in_ring(6);
        }
        assert_eq!(v, PoolVersion(63));
        assert_eq!(v.next_in_ring(6), PoolVersion(0));
    }

    #[test]
    fn version_ring_respects_width() {
        assert_eq!(PoolVersion(1).next_in_ring(1), PoolVersion(0));
        assert_eq!(PoolVersion(0).next_in_ring(1), PoolVersion(1));
    }
}
