//! Common types shared by every crate of the SilkRoad reproduction.
//!
//! The vocabulary follows the paper:
//!
//! * a **VIP** (virtual IP) is the `address:port` a service is reachable at;
//! * a **DIP** (direct IP) is one backend server in the VIP's *DIP pool*;
//! * a **connection** is identified by its L4 [`FiveTuple`];
//! * **PCC** (per-connection consistency) means every packet of a connection
//!   is delivered to the same DIP, even across DIP-pool updates.
//!
//! Everything here is deliberately simulation-friendly: time is a plain
//! nanosecond counter ([`Nanos`]), addresses support both IPv4 and IPv6
//! (entry sizes differ, which matters for the paper's memory results), and
//! all types are `Copy` where possible so the hot simulation paths never
//! allocate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod frame;
pub mod ids;
pub mod key;
pub mod packet;
pub mod time;
pub mod tuple;

pub use addr::{Addr, AddrFamily, Dip, Vip};
pub use error::TypeError;
pub use frame::{FrameView, RewriteMode, RewriteOp};
pub use ids::{ClusterId, ConnSeq, DipId, PoolVersion, SwitchId, VipId};
pub use key::{TupleKey, MAX_KEY_LEN};
pub use packet::{PacketMeta, TcpFlags};
pub use time::{Duration, Nanos};
pub use tuple::{FiveTuple, Protocol};
