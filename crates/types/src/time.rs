//! Simulation time.
//!
//! The whole reproduction runs on a single deterministic clock measured in
//! nanoseconds since simulation start. We use a newtype instead of
//! `std::time::Duration`/`Instant` because simulated time must be cheap to
//! order, hash, and do saturating arithmetic on, and must never consult the
//! host clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

/// A span of simulated time, in nanoseconds.
///
/// Distinct from [`Nanos`] so that `instant + instant` does not typecheck
/// but `instant + span` does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Nanos {
    /// The start of simulated time.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant (used as an "infinity" sentinel).
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Nanos {
        Nanos(m * 60 * 1_000_000_000)
    }

    /// Instant expressed as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Nanos) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    pub fn saturating_add(self, d: Duration) -> Nanos {
        Nanos(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Duration {
        Duration(m * 60 * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero — workload generators
    /// sample durations from continuous distributions and must never panic
    /// on a tail sample.
    pub fn from_secs_f64(s: f64) -> Duration {
        if s.is_nan() || s <= 0.0 {
            return Duration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(ns.round() as u64)
        }
    }

    /// Span as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer division of spans (how many `rhs` fit in `self`).
    pub fn div_duration(self, rhs: Duration) -> u64 {
        self.0.checked_div(rhs.0).unwrap_or(0)
    }

    /// Multiply the span by an integer, saturating.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Duration) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Nanos {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Duration) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Sub<Nanos> for Nanos {
    type Output = Duration;
    fn sub(self, rhs: Nanos) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_string()
    } else if ns >= 60_000_000_000 {
        format!("{:.2}min", ns as f64 / 60e9)
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_mins(2), Nanos::from_secs(120));
        assert_eq!(Duration::from_secs(3), Duration::from_millis(3_000));
    }

    #[test]
    fn instant_plus_span() {
        let t = Nanos::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t, Nanos(1_500_000_000));
    }

    #[test]
    fn instant_difference_is_span() {
        let a = Nanos::from_secs(5);
        let b = Nanos::from_secs(2);
        assert_eq!(a - b, Duration::from_secs(3));
    }

    #[test]
    fn since_saturates() {
        let a = Nanos::from_secs(1);
        let b = Nanos::from_secs(2);
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b.since(a), Duration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::MAX);
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn div_duration() {
        let d = Duration::from_secs(10);
        assert_eq!(d.div_duration(Duration::from_secs(3)), 3);
        assert_eq!(d.div_duration(Duration::ZERO), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos(1_500).to_string(), "1.500us");
        assert_eq!(Nanos(2_000_000).to_string(), "2.000ms");
        assert_eq!(Nanos::from_secs(3).to_string(), "3.000s");
        assert_eq!(Nanos::from_mins(90).to_string(), "90.00min");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Nanos::MAX.saturating_add(Duration(1)), Nanos::MAX);
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
    }
}
