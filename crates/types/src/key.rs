//! Inline, fixed-size connection match keys.
//!
//! The data plane hashes and compares a connection's canonical key bytes on
//! every packet. Building that key as a heap `Vec<u8>` (as
//! [`FiveTuple::key_bytes`] does) costs an allocation per packet, which is
//! the opposite of the line-rate story the paper tells. [`TupleKey`] holds
//! the same bytes inline: a 37-byte buffer (the IPv6 worst case from §4.2)
//! plus a length, `Copy`, and borrowable as `&[u8]` everywhere a key slice
//! is accepted.

use crate::tuple::FiveTuple;
use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum 5-tuple key length: the IPv6 encoding (2×16 B addresses,
/// 2×2 B ports, 1 B protocol).
pub const MAX_KEY_LEN: usize = 37;

/// A 5-tuple match key stored inline on the stack.
///
/// Byte content is identical to [`FiveTuple::key_bytes`] for the same
/// tuple — src endpoint, dst endpoint, protocol number — so the two
/// representations hash identically and may be mixed freely.
///
/// Equality, ordering, and hashing all delegate to the encoded byte slice,
/// and `Borrow<[u8]>` is implemented consistently with `Hash`/`Eq`, so a
/// `HashMap<TupleKey, V>` can be probed with a plain `&[u8]` key without
/// re-encoding.
#[derive(Clone, Copy)]
pub struct TupleKey {
    buf: [u8; MAX_KEY_LEN],
    len: u8,
}

impl TupleKey {
    /// Encode a 5-tuple into an inline key. No heap allocation.
    pub fn new(tuple: &FiveTuple) -> TupleKey {
        let mut buf = [0u8; MAX_KEY_LEN];
        let mut at = tuple.src.encode_to(&mut buf, 0);
        at += tuple.dst.encode_to(&mut buf, at);
        buf[at] = tuple.proto.number();
        TupleKey {
            buf,
            len: (at + 1) as u8,
        }
    }

    /// Build a key from raw canonical bytes (13 or 37 of them).
    ///
    /// # Panics
    /// If `bytes` is longer than [`MAX_KEY_LEN`].
    pub fn from_bytes(bytes: &[u8]) -> TupleKey {
        assert!(bytes.len() <= MAX_KEY_LEN, "key longer than MAX_KEY_LEN");
        let mut buf = [0u8; MAX_KEY_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        TupleKey {
            buf,
            len: bytes.len() as u8,
        }
    }

    /// The encoded key bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Encoded length in bytes (13 for IPv4, 37 for IPv6).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the key is empty (never true for keys built from tuples).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl PartialEq for TupleKey {
    fn eq(&self, other: &TupleKey) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TupleKey {}

impl Hash for TupleKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match the `Hash` impl for `[u8]` so `Borrow<[u8]>` probes
        // find the same buckets.
        self.as_slice().hash(state);
    }
}

impl PartialOrd for TupleKey {
    fn partial_cmp(&self, other: &TupleKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleKey {
    fn cmp(&self, other: &TupleKey) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Borrow<[u8]> for TupleKey {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for TupleKey {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&FiveTuple> for TupleKey {
    fn from(t: &FiveTuple) -> TupleKey {
        TupleKey::new(t)
    }
}

impl fmt::Debug for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TupleKey(")?;
        for b in self.as_slice() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl FiveTuple {
    /// The inline, allocation-free form of [`FiveTuple::key_bytes`].
    pub fn tuple_key(&self) -> TupleKey {
        TupleKey::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::tuple::Protocol;

    fn v4(port: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, port), Addr::v4(20, 0, 0, 1, 80))
    }

    fn v6(port: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v6_indexed(0, 9, port), Addr::v6_indexed(1, 2, 80))
    }

    #[test]
    fn matches_key_bytes_both_families() {
        for t in [v4(1234), v6(4321)] {
            assert_eq!(t.tuple_key().as_slice(), &t.key_bytes()[..]);
            assert_eq!(t.tuple_key().len(), t.key_len());
        }
        let udp = FiveTuple {
            proto: Protocol::Udp,
            ..v4(9)
        };
        assert_eq!(udp.tuple_key().as_slice(), &udp.key_bytes()[..]);
    }

    #[test]
    fn hashmap_probe_by_slice() {
        use std::collections::HashMap;
        let mut m: HashMap<TupleKey, u32> = HashMap::new();
        m.insert(v4(1).tuple_key(), 7);
        m.insert(v6(2).tuple_key(), 8);
        assert_eq!(m.get(v4(1).key_bytes().as_slice()), Some(&7));
        assert_eq!(m.get(v6(2).key_bytes().as_slice()), Some(&8));
        assert_eq!(m.get(v4(3).key_bytes().as_slice()), None);
    }

    #[test]
    fn equality_ignores_buffer_tail() {
        let a = TupleKey::from_bytes(&[1, 2, 3]);
        let mut long = [0u8; 37];
        long[..3].copy_from_slice(&[1, 2, 3]);
        let b = TupleKey::from_bytes(&long);
        assert_ne!(a, b); // different lengths
        assert_eq!(a, TupleKey::from_bytes(&[1, 2, 3]));
    }

    #[test]
    fn roundtrip_from_bytes() {
        let t = v6(77);
        let k = TupleKey::from_bytes(&t.key_bytes());
        assert_eq!(k, t.tuple_key());
        assert!(!k.is_empty());
    }
}
