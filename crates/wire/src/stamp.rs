//! DSCP version stamping — Concury's on-wire realization.
//!
//! The Concury zoo member (`sr_algo::concury`) steers steady-state flows
//! by the pool version the flow was born under, carried *in the packet*
//! instead of in switch SRAM. This module is the wire half of that claim:
//! the 6-bit version rides in the IP DSCP field — the top six bits of the
//! IPv4 TOS byte, or of the IPv6 traffic class.
//!
//! [`stamp_version`] patches a raw frame in place (updating the IPv4
//! header checksum incrementally per RFC 1624; IPv6 has no header
//! checksum), and [`parse_version`] reads the stamp back. The proptests in
//! `tests/properties.rs` prove the round trip lossless for both families
//! and every 6-bit version, with the frame's tuple and checksums intact —
//! the property Concury's PCC argument rests on.

use crate::checksum::incremental_update;
use crate::WireError;
use sr_types::frame::{ETHERTYPE_IPV4, ETHERTYPE_IPV6, ETH_HDR_LEN};

/// Width of the DSCP field (and thus of a stamped pool version).
pub const VERSION_BITS: u32 = 6;

/// Largest stampable version tag (`2^6 - 1`).
pub const MAX_VERSION: u8 = (1 << VERSION_BITS) - 1;

#[inline]
fn ethertype(frame: &[u8]) -> Result<u16, WireError> {
    let hi = frame.get(12).copied().ok_or(WireError::Truncated)?;
    let lo = frame.get(13).copied().ok_or(WireError::Truncated)?;
    Ok(u16::from_be_bytes([hi, lo]))
}

/// Write `version` into the frame's DSCP bits, preserving the ECN bits
/// (IPv4) / ECN and flow label (IPv6). For IPv4 the header checksum is
/// updated incrementally over the changed word, so the frame still
/// verifies. Errors on truncated frames, non-IP ethertypes, and versions
/// wider than [`VERSION_BITS`].
pub fn stamp_version(frame: &mut [u8], version: u8) -> Result<(), WireError> {
    if version > MAX_VERSION {
        return Err(WireError::BadHeader("version wider than DSCP"));
    }
    let l3 = ETH_HDR_LEN;
    match ethertype(frame)? {
        ETHERTYPE_IPV4 => {
            // TOS byte: DSCP in the top 6 bits, ECN in the low 2.
            let tos_at = l3 + 1;
            let old_tos = frame.get(tos_at).copied().ok_or(WireError::Truncated)?;
            let new_tos = (version << 2) | (old_tos & 0x03);
            if new_tos == old_tos {
                return Ok(());
            }
            // The TOS byte lives in the header's first 16-bit word
            // (version/IHL, TOS); patch the stored checksum over it.
            let ver_ihl = frame.get(l3).copied().ok_or(WireError::Truncated)?;
            let ck_at = l3 + 10;
            let ck_hi = frame.get(ck_at).copied().ok_or(WireError::Truncated)?;
            let ck_lo = frame.get(ck_at + 1).copied().ok_or(WireError::Truncated)?;
            let old_ck = u16::from_be_bytes([ck_hi, ck_lo]);
            let new_ck = incremental_update(old_ck, &[ver_ihl, old_tos], &[ver_ihl, new_tos]);
            if let Some(b) = frame.get_mut(tos_at) {
                *b = new_tos;
            }
            let new_ck_bytes = new_ck.to_be_bytes();
            if let Some(b) = frame.get_mut(ck_at) {
                *b = new_ck_bytes[0];
            }
            if let Some(b) = frame.get_mut(ck_at + 1) {
                *b = new_ck_bytes[1];
            }
            Ok(())
        }
        ETHERTYPE_IPV6 => {
            // Traffic class spans the low nibble of byte 0 and the high
            // nibble of byte 1; DSCP is its top 6 bits. No checksum.
            let b0 = frame.get(l3).copied().ok_or(WireError::Truncated)?;
            let b1 = frame.get(l3 + 1).copied().ok_or(WireError::Truncated)?;
            let tc = ((b0 & 0x0f) << 4) | (b1 >> 4);
            let new_tc = (version << 2) | (tc & 0x03);
            if let Some(b) = frame.get_mut(l3) {
                *b = (b0 & 0xf0) | (new_tc >> 4);
            }
            if let Some(b) = frame.get_mut(l3 + 1) {
                *b = ((new_tc & 0x0f) << 4) | (b1 & 0x0f);
            }
            Ok(())
        }
        other => Err(WireError::UnsupportedEtherType(other)),
    }
}

/// Read the stamped version (the DSCP bits) back out of a frame.
pub fn parse_version(frame: &[u8]) -> Result<u8, WireError> {
    let l3 = ETH_HDR_LEN;
    match ethertype(frame)? {
        ETHERTYPE_IPV4 => {
            let tos = frame.get(l3 + 1).copied().ok_or(WireError::Truncated)?;
            Ok(tos >> 2)
        }
        ETHERTYPE_IPV6 => {
            let b0 = frame.get(l3).copied().ok_or(WireError::Truncated)?;
            let b1 = frame.get(l3 + 1).copied().ok_or(WireError::Truncated)?;
            let tc = ((b0 & 0x0f) << 4) | (b1 >> 4);
            Ok(tc >> 2)
        }
        other => Err(WireError::UnsupportedEtherType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{build_frame, FrameSpec};
    use crate::parse::parse_frame;
    use crate::rewrite::verify_checksums;
    use sr_types::{Addr, FiveTuple, Protocol, TcpFlags};

    fn v4_frame() -> Vec<u8> {
        let mut buf = vec![0u8; 256];
        let n = build_frame(
            &FrameSpec {
                tuple: FiveTuple::tcp(Addr::v4(100, 0, 0, 1, 4242), Addr::v4(20, 0, 0, 1, 80)),
                flags: TcpFlags::SYN,
                wire_len: 54,
                seq: 7,
            },
            &mut buf,
        )
        .unwrap();
        buf.truncate(n);
        buf
    }

    fn v6_frame() -> Vec<u8> {
        let mut buf = vec![0u8; 256];
        let n = build_frame(
            &FrameSpec {
                tuple: FiveTuple {
                    src: Addr::v6_indexed(1, 9, 5353),
                    dst: Addr::v6_indexed(2, 3, 53),
                    proto: Protocol::Udp,
                },
                flags: TcpFlags::NONE,
                wire_len: 80,
                seq: 0,
            },
            &mut buf,
        )
        .unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn v4_round_trip_preserves_checksums_and_tuple() {
        let mut f = v4_frame();
        let before = parse_frame(&f).unwrap();
        stamp_version(&mut f, 42).unwrap();
        assert_eq!(parse_version(&f).unwrap(), 42);
        verify_checksums(&f).unwrap();
        let after = parse_frame(&f).unwrap();
        assert_eq!(after.meta.tuple, before.meta.tuple);
    }

    #[test]
    fn v6_round_trip_preserves_tuple() {
        let mut f = v6_frame();
        let before = parse_frame(&f).unwrap();
        stamp_version(&mut f, 63).unwrap();
        assert_eq!(parse_version(&f).unwrap(), 63);
        let after = parse_frame(&f).unwrap();
        assert_eq!(after.meta.tuple, before.meta.tuple);
    }

    #[test]
    fn restamping_overwrites() {
        let mut f = v4_frame();
        stamp_version(&mut f, 10).unwrap();
        stamp_version(&mut f, 20).unwrap();
        assert_eq!(parse_version(&f).unwrap(), 20);
        verify_checksums(&f).unwrap();
    }

    #[test]
    fn wide_version_rejected() {
        let mut f = v4_frame();
        assert!(matches!(
            stamp_version(&mut f, 64),
            Err(WireError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_and_non_ip_rejected() {
        let mut short = v4_frame();
        short.truncate(10);
        assert_eq!(stamp_version(&mut short, 1), Err(WireError::Truncated));
        assert_eq!(parse_version(&short), Err(WireError::Truncated));
        let mut arp = v4_frame();
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(matches!(
            stamp_version(&mut arp, 1),
            Err(WireError::UnsupportedEtherType(_))
        ));
    }
}
