//! Zero-copy, allocation-free frame parsing.
//!
//! [`parse_frame`] walks Ethernet → IPv4/IPv6 → TCP/UDP headers of a raw
//! `&[u8]` frame and yields the [`sr_types::PacketMeta`] the data plane
//! consumes plus a [`FrameView`] of header offsets for the rewrite engine.
//! Every read is a bounds-checked slice (`get`), so truncated or garbage
//! input returns a [`WireError`] — the parser is total: no panics, no heap.
//!
//! Scope matches what the reproduction's switch load-balances: Ethernet II
//! frames, IPv4 without the rarely-used options beyond IHL, IPv6 without
//! extension headers, TCP and UDP. Anything else is a typed error the
//! caller counts and skips (a real switch would pass it to regular
//! forwarding).

use crate::WireError;
use sr_types::frame::{ETHERTYPE_IPV4, ETHERTYPE_IPV6, ETH_HDR_LEN, IPV6_HDR_LEN};
use sr_types::{Addr, AddrFamily, FiveTuple, FrameView, PacketMeta, Protocol, TcpFlags};
use std::net::IpAddr;

/// One parsed frame: the data-plane metadata plus the header offsets the
/// rewrite engine needs to put a decision back onto the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parsed {
    /// Header offsets and lengths.
    pub view: FrameView,
    /// The per-packet metadata the switch consumes.
    pub meta: PacketMeta,
}

// srlint: hot-path begin
/// Read a big-endian u16 at `at`.
#[inline]
fn be16(b: &[u8], at: usize) -> Option<u16> {
    let s = b.get(at..at.checked_add(2)?)?;
    Some(u16::from_be_bytes([
        s.first().copied()?,
        s.get(1).copied()?,
    ]))
}

/// Read one byte at `at`.
#[inline]
fn u8_at(b: &[u8], at: usize) -> Option<u8> {
    b.get(at).copied()
}

/// Read an IPv4 address at `at`.
#[inline]
fn v4_at(b: &[u8], at: usize) -> Option<IpAddr> {
    let s = b.get(at..at.checked_add(4)?)?;
    let o: [u8; 4] = s.try_into().ok()?;
    Some(IpAddr::from(o))
}

/// Read an IPv6 address at `at`.
#[inline]
fn v6_at(b: &[u8], at: usize) -> Option<IpAddr> {
    let s = b.get(at..at.checked_add(16)?)?;
    let o: [u8; 16] = s.try_into().ok()?;
    Some(IpAddr::from(o))
}

/// Parse the L4 header at `l4`, returning (src port, dst port, flags,
/// payload offset).
#[inline]
fn parse_l4(
    frame: &[u8],
    l4: usize,
    proto: Protocol,
) -> Result<(u16, u16, TcpFlags, usize), WireError> {
    match proto {
        Protocol::Tcp => {
            let sport = be16(frame, l4).ok_or(WireError::Truncated)?;
            let dport = be16(frame, l4 + 2).ok_or(WireError::Truncated)?;
            let off = u8_at(frame, l4 + 12).ok_or(WireError::Truncated)? >> 4;
            if off < 5 {
                return Err(WireError::BadHeader("TCP data offset < 5"));
            }
            let flags = u8_at(frame, l4 + 13).ok_or(WireError::Truncated)?;
            let payload = l4 + usize::from(off) * 4;
            if frame.len() < payload {
                return Err(WireError::Truncated);
            }
            Ok((sport, dport, TcpFlags(flags), payload))
        }
        Protocol::Udp => {
            let sport = be16(frame, l4).ok_or(WireError::Truncated)?;
            let dport = be16(frame, l4 + 2).ok_or(WireError::Truncated)?;
            let payload = l4 + 8;
            if frame.len() < payload {
                return Err(WireError::Truncated);
            }
            Ok((sport, dport, TcpFlags::NONE, payload))
        }
    }
}

/// Parse one Ethernet frame into data-plane metadata and header offsets.
///
/// Allocation-free and panic-free: every header read is bounds-checked,
/// and malformed input yields a typed [`WireError`].
pub fn parse_frame(frame: &[u8]) -> Result<Parsed, WireError> {
    if frame.len() > u32::MAX as usize {
        return Err(WireError::BadHeader("frame longer than u32"));
    }
    let ethertype = be16(frame, 12).ok_or(WireError::Truncated)?;
    let l3 = ETH_HDR_LEN;
    let (family, src_ip, dst_ip, proto_num, l4) = match ethertype {
        ETHERTYPE_IPV4 => {
            let vihl = u8_at(frame, l3).ok_or(WireError::Truncated)?;
            if vihl >> 4 != 4 {
                return Err(WireError::BadHeader("IPv4 version nibble"));
            }
            let ihl = usize::from(vihl & 0x0f) * 4;
            if ihl < 20 {
                return Err(WireError::BadHeader("IPv4 IHL < 5"));
            }
            let total = usize::from(be16(frame, l3 + 2).ok_or(WireError::Truncated)?);
            if total < ihl || frame.len() < l3 + total {
                return Err(WireError::Truncated);
            }
            let proto = u8_at(frame, l3 + 9).ok_or(WireError::Truncated)?;
            let src = v4_at(frame, l3 + 12).ok_or(WireError::Truncated)?;
            let dst = v4_at(frame, l3 + 16).ok_or(WireError::Truncated)?;
            (AddrFamily::V4, src, dst, proto, l3 + ihl)
        }
        ETHERTYPE_IPV6 => {
            let ver = u8_at(frame, l3).ok_or(WireError::Truncated)?;
            if ver >> 4 != 6 {
                return Err(WireError::BadHeader("IPv6 version nibble"));
            }
            let payload_len = usize::from(be16(frame, l3 + 4).ok_or(WireError::Truncated)?);
            if frame.len() < l3 + IPV6_HDR_LEN + payload_len {
                return Err(WireError::Truncated);
            }
            let next = u8_at(frame, l3 + 6).ok_or(WireError::Truncated)?;
            let src = v6_at(frame, l3 + 8).ok_or(WireError::Truncated)?;
            let dst = v6_at(frame, l3 + 24).ok_or(WireError::Truncated)?;
            (AddrFamily::V6, src, dst, next, l3 + IPV6_HDR_LEN)
        }
        other => return Err(WireError::UnsupportedEtherType(other)),
    };
    let proto = match proto_num {
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        other => return Err(WireError::UnsupportedL4(other)),
    };
    let (sport, dport, flags, payload) = parse_l4(frame, l4, proto)?;
    let tuple = FiveTuple {
        src: Addr {
            ip: src_ip,
            port: sport,
        },
        dst: Addr {
            ip: dst_ip,
            port: dport,
        },
        proto,
    };
    Ok(Parsed {
        view: FrameView {
            l3: l3 as u16,
            l4: l4 as u16,
            payload: payload as u16,
            family,
            proto,
            frame_len: frame.len() as u32,
        },
        meta: PacketMeta {
            tuple,
            flags,
            len: frame.len() as u32,
        },
    })
}
// srlint: hot-path end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{build_frame, FrameSpec};

    fn v4_tuple() -> FiveTuple {
        FiveTuple::tcp(Addr::v4(100, 0, 0, 1, 4242), Addr::v4(20, 0, 0, 1, 80))
    }

    fn frame_of(tuple: FiveTuple, flags: TcpFlags, len: u32) -> Vec<u8> {
        let mut buf = vec![0u8; 2048];
        let n = build_frame(
            &FrameSpec {
                tuple,
                flags,
                wire_len: len,
                seq: 7,
            },
            &mut buf,
        )
        .unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn parses_v4_tcp_frame() {
        let f = frame_of(v4_tuple(), TcpFlags::SYN, 54);
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.meta.tuple, v4_tuple());
        assert!(p.meta.flags.is_syn());
        assert_eq!(p.meta.len, 54);
        assert_eq!(p.view.l3, 14);
        assert_eq!(p.view.l4, 34);
        assert_eq!(p.view.payload, 54);
        assert_eq!(p.view.family, AddrFamily::V4);
    }

    #[test]
    fn parses_v6_udp_frame() {
        let t = FiveTuple {
            src: Addr::v6_indexed(1, 9, 5353),
            dst: Addr::v6_indexed(2, 3, 53),
            proto: Protocol::Udp,
        };
        let f = frame_of(t, TcpFlags::NONE, 200);
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.meta.tuple, t);
        assert_eq!(p.view.l4, 54);
        assert_eq!(p.view.payload, 62);
        assert_eq!(p.view.family, AddrFamily::V6);
        assert_eq!(p.meta.len, 200);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let f = frame_of(v4_tuple(), TcpFlags::SYN, 54);
        for cut in 0..f.len() {
            assert!(parse_frame(&f[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unsupported_ethertype_and_l4() {
        let mut f = frame_of(v4_tuple(), TcpFlags::SYN, 54);
        f[12] = 0x08;
        f[13] = 0x06; // ARP
        assert_eq!(
            parse_frame(&f),
            Err(WireError::UnsupportedEtherType(0x0806))
        );
        let mut f = frame_of(v4_tuple(), TcpFlags::SYN, 54);
        f[23] = 47; // GRE
        assert_eq!(parse_frame(&f), Err(WireError::UnsupportedL4(47)));
    }

    #[test]
    fn bad_version_nibble_rejected() {
        let mut f = frame_of(v4_tuple(), TcpFlags::SYN, 54);
        f[14] = 0x65;
        assert!(matches!(parse_frame(&f), Err(WireError::BadHeader(_))));
    }
}
