//! Apply a forwarding decision back onto the wire.
//!
//! Two carrier modes, matching §4 of the paper's discussion of how a
//! switching-ASIC load balancer delivers a VIP packet to its DIP:
//!
//! * **NAT** ([`RewriteMode::Nat`]): rewrite the destination address and
//!   port in place, patching the IPv4 header checksum and the TCP/UDP
//!   checksum with RFC 1624 incremental updates — the frame length never
//!   changes and no payload byte is touched.
//! * **Encap** ([`RewriteMode::Encap`]): prepend an outer IP header whose
//!   source is the VIP and whose destination is the DIP (IPv4-in-IPv4,
//!   RFC 2003, or IPv6-in-IPv6); the inner packet is carried unmodified so
//!   the DIP can see the original VIP destination.
//!
//! Both write into a caller-provided buffer and are allocation-free and
//! panic-free; [`verify_checksums`] is the independent full-recompute
//! validator the replay driver uses to check the incremental math.

use crate::checksum::{checksum, combine, incremental_update, ones_sum};
use crate::WireError;
use sr_types::frame::{
    ETHERTYPE_IPV4, ETHERTYPE_IPV6, ETH_HDR_LEN, IPPROTO_IPIP, IPPROTO_IPV6, IPV4_HDR_LEN,
    IPV6_HDR_LEN,
};
use sr_types::{AddrFamily, FrameView, Protocol, RewriteMode, RewriteOp};
use std::net::IpAddr;

/// Largest rewrite output for a given input frame: encapsulation adds one
/// IPv6 header at most. Size rewrite buffers as `frame_len + ENCAP_HEADROOM`.
pub const ENCAP_HEADROOM: usize = IPV6_HDR_LEN;

// srlint: hot-path begin
#[inline]
fn read16(b: &[u8], at: usize) -> Result<u16, WireError> {
    let s = b.get(at..at.checked_add(2).ok_or(WireError::Truncated)?);
    let s = s.ok_or(WireError::Truncated)?;
    Ok(u16::from_be_bytes([
        s.first().copied().unwrap_or(0),
        s.get(1).copied().unwrap_or(0),
    ]))
}

#[inline]
fn write16(b: &mut [u8], at: usize, v: u16) -> Result<(), WireError> {
    let end = at.checked_add(2).ok_or(WireError::Truncated)?;
    let s = b.get_mut(at..end).ok_or(WireError::Truncated)?;
    s.copy_from_slice(&v.to_be_bytes());
    Ok(())
}

#[inline]
fn copy_into(out: &mut [u8], at: usize, src: &[u8]) -> Result<(), WireError> {
    let end = at.checked_add(src.len()).ok_or(WireError::Truncated)?;
    let dst = out.get_mut(at..end).ok_or(WireError::BufferTooSmall)?;
    dst.copy_from_slice(src);
    Ok(())
}

/// Copy the IP octets of `ip` into `buf`, returning the octet count.
#[inline]
fn ip_octets(ip: IpAddr, buf: &mut [u8; 16]) -> usize {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            if let Some(dst) = buf.get_mut(..4) {
                dst.copy_from_slice(&o);
            }
            4
        }
        IpAddr::V6(v6) => {
            let o = v6.octets();
            buf.copy_from_slice(&o);
            16
        }
    }
}

/// Offset of the destination IP address within the IP header.
#[inline]
fn dst_addr_off(view: &FrameView) -> usize {
    match view.family {
        AddrFamily::V4 => usize::from(view.l3) + 16,
        AddrFamily::V6 => usize::from(view.l3) + 24,
    }
}

/// Offset of the L4 checksum field, if the frame carries one in use.
#[inline]
fn l4_cksum_off(view: &FrameView) -> usize {
    match view.proto {
        Protocol::Tcp => usize::from(view.l4) + 16,
        Protocol::Udp => usize::from(view.l4) + 6,
    }
}

/// NAT rewrite in `out` (which already holds the full frame): replace the
/// destination address + port with the DIP and patch checksums
/// incrementally.
#[inline]
fn nat_in_place(out: &mut [u8], view: &FrameView, op: &RewriteOp) -> Result<(), WireError> {
    let dip = op.dip.0;
    let mut new_addr = [0u8; 16];
    let addr_len = ip_octets(dip.ip, &mut new_addr);
    let new_addr = new_addr.get(..addr_len).ok_or(WireError::Truncated)?;

    let addr_off = dst_addr_off(view);
    let addr_end = addr_off.checked_add(addr_len).ok_or(WireError::Truncated)?;
    let mut old_addr = [0u8; 16];
    {
        let cur = out.get(addr_off..addr_end).ok_or(WireError::Truncated)?;
        let dst = old_addr.get_mut(..addr_len).ok_or(WireError::Truncated)?;
        dst.copy_from_slice(cur);
    }
    let old_addr = old_addr.get(..addr_len).ok_or(WireError::Truncated)?;

    let port_off = usize::from(view.l4) + 2;
    let old_port = read16(out, port_off)?;
    let old_port_bytes = old_port.to_be_bytes();
    let new_port_bytes = dip.port.to_be_bytes();

    // IPv4 header checksum covers the destination address (not the port).
    if view.family == AddrFamily::V4 {
        let ip_ck_off = usize::from(view.l3) + 10;
        let ck = read16(out, ip_ck_off)?;
        write16(out, ip_ck_off, incremental_update(ck, old_addr, new_addr))?;
    }

    // The L4 checksum covers the pseudo-header (destination address) and
    // the destination port. UDP checksum 0 means "not computed": skip.
    let l4_ck_off = l4_cksum_off(view);
    let l4_ck = read16(out, l4_ck_off)?;
    let udp_unchecksummed = view.proto == Protocol::Udp && l4_ck == 0;
    if !udp_unchecksummed {
        let mut ck = incremental_update(l4_ck, old_addr, new_addr);
        ck = incremental_update(ck, &old_port_bytes, &new_port_bytes);
        // RFC 768: a computed 0 is transmitted as 0xffff.
        if view.proto == Protocol::Udp && ck == 0 {
            ck = 0xffff;
        }
        write16(out, l4_ck_off, ck)?;
    }

    copy_into(out, addr_off, new_addr)?;
    write16(out, port_off, dip.port)?;
    Ok(())
}

/// IP-in-IP encapsulation: `out` receives Ethernet + outer IP (VIP → DIP)
/// followed by the inner packet's IP header onward, unmodified.
#[inline]
fn encap(
    frame: &[u8],
    view: &FrameView,
    op: &RewriteOp,
    out: &mut [u8],
) -> Result<usize, WireError> {
    let dip = op.dip.0;
    let l3 = usize::from(view.l3);
    let inner = frame.get(l3..).ok_or(WireError::Truncated)?;
    let eth = frame.get(..l3).ok_or(WireError::Truncated)?;

    // Outer source is the original destination (the VIP's address): the
    // DIP decapsulates and still sees which VIP the flow arrived on.
    let addr_len = view.family.addr_bytes();
    let vip_off = dst_addr_off(view);
    let vip_end = vip_off.checked_add(addr_len).ok_or(WireError::Truncated)?;
    let vip_bytes = frame.get(vip_off..vip_end).ok_or(WireError::Truncated)?;

    let outer_hdr = match view.family {
        AddrFamily::V4 => IPV4_HDR_LEN,
        AddrFamily::V6 => IPV6_HDR_LEN,
    };
    let total = l3
        .checked_add(outer_hdr)
        .and_then(|n| n.checked_add(inner.len()))
        .ok_or(WireError::Truncated)?;
    if out.len() < total {
        return Err(WireError::BufferTooSmall);
    }

    copy_into(out, 0, eth)?;
    match dip.ip {
        IpAddr::V4(d) if view.family == AddrFamily::V4 => {
            let hdr = outer_v4(inner.len(), vip_bytes, &d.octets());
            copy_into(out, l3, &hdr)?;
        }
        IpAddr::V6(d) if view.family == AddrFamily::V6 => {
            let hdr = outer_v6(inner.len(), vip_bytes, &d.octets());
            copy_into(out, l3, &hdr)?;
        }
        _ => return Err(WireError::FamilyMismatch),
    }
    copy_into(out, l3 + outer_hdr, inner)?;
    Ok(total)
}

/// Build the outer IPv4 header (RFC 2003 carrier) for an encapsulated packet.
#[inline]
fn outer_v4(inner_len: usize, src: &[u8], dst: &[u8]) -> [u8; IPV4_HDR_LEN] {
    let [tl0, tl1] = ((IPV4_HDR_LEN + inner_len) as u16).to_be_bytes();
    let mut hdr = [0u8; IPV4_HDR_LEN];
    // version 4 IHL 5 | tos | total len | id | DF | ttl 64 | proto | cksum.
    let head = [0x45u8, 0, tl0, tl1, 0, 0, 0x40, 0, 64, IPPROTO_IPIP, 0, 0];
    for (b, v) in hdr.iter_mut().zip(head) {
        *b = v;
    }
    for (b, v) in hdr.iter_mut().skip(12).zip(src.iter().take(4)) {
        *b = *v;
    }
    for (b, v) in hdr.iter_mut().skip(16).zip(dst.iter().take(4)) {
        *b = *v;
    }
    let ck = checksum(&hdr).to_be_bytes();
    for (b, v) in hdr.iter_mut().skip(10).zip(ck) {
        *b = v;
    }
    hdr
}

/// Build the outer IPv6 header for an encapsulated packet.
#[inline]
fn outer_v6(inner_len: usize, src: &[u8], dst: &[u8]) -> [u8; IPV6_HDR_LEN] {
    let [p0, p1] = (inner_len as u16).to_be_bytes();
    let mut hdr = [0u8; IPV6_HDR_LEN];
    // version 6 | flow label 0 | payload len | next header | hop limit 64.
    let head = [0x60u8, 0, 0, 0, p0, p1, IPPROTO_IPV6, 64];
    for (b, v) in hdr.iter_mut().zip(head) {
        *b = v;
    }
    for (b, v) in hdr.iter_mut().skip(8).zip(src.iter().take(16)) {
        *b = *v;
    }
    for (b, v) in hdr.iter_mut().skip(24).zip(dst.iter().take(16)) {
        *b = *v;
    }
    hdr
}

/// Apply `op` to `frame`, writing the output frame into `out` and
/// returning its length.
///
/// Allocation-free and panic-free. `out` must hold at least
/// `frame.len() + ENCAP_HEADROOM` bytes (NAT uses exactly `frame.len()`).
/// The DIP's address family must match the frame's.
pub fn rewrite_frame(
    frame: &[u8],
    view: &FrameView,
    op: &RewriteOp,
    out: &mut [u8],
) -> Result<usize, WireError> {
    let dip_family = match op.dip.0.ip {
        IpAddr::V4(_) => AddrFamily::V4,
        IpAddr::V6(_) => AddrFamily::V6,
    };
    if dip_family != view.family {
        return Err(WireError::FamilyMismatch);
    }
    match op.mode {
        RewriteMode::Nat => {
            let n = frame.len();
            copy_into(out, 0, frame)?;
            let dst = out.get_mut(..n).ok_or(WireError::BufferTooSmall)?;
            nat_in_place(dst, view, op)?;
            Ok(n)
        }
        RewriteMode::Encap => encap(frame, view, op, out),
    }
}
// srlint: hot-path end

/// One's-complement sum of the TCP/UDP pseudo-header for the IP packet at
/// `l3` whose L4 segment spans `l4..frame.len()`.
fn pseudo_header_sum(
    frame: &[u8],
    l3: usize,
    l4: usize,
    family: AddrFamily,
    proto_num: u8,
) -> Result<u16, WireError> {
    let seg_len = frame.len().checked_sub(l4).ok_or(WireError::Truncated)? as u16;
    let (src_off, addr_len) = match family {
        AddrFamily::V4 => (l3 + 12, 4),
        AddrFamily::V6 => (l3 + 8, 16),
    };
    let addrs = frame
        .get(src_off..src_off + 2 * addr_len)
        .ok_or(WireError::Truncated)?;
    Ok(combine(&[ones_sum(addrs), u16::from(proto_num), seg_len]))
}

/// Validate every checksum in `frame` by full recomputation: the IPv4
/// header checksum and the TCP/UDP checksum (with pseudo-header). Follows
/// one level of IP-in-IP encapsulation (outer headers validated too).
/// This is the replay driver's independent check on the incremental
/// rewrite math; it shares no code path with [`rewrite_frame`]'s RFC 1624
/// updates beyond the one's-complement primitives.
pub fn verify_checksums(frame: &[u8]) -> Result<(), WireError> {
    let ethertype = read16(frame, 12)?;
    verify_ip(frame, ETH_HDR_LEN, ethertype, 0)
}

/// Validate the IP packet at `l3` (recursing through one tunnel level).
fn verify_ip(frame: &[u8], l3: usize, ethertype: u16, depth: u8) -> Result<(), WireError> {
    if depth > 1 {
        return Err(WireError::BadHeader("tunnel nesting deeper than one level"));
    }
    let (family, proto, l4) = match ethertype {
        ETHERTYPE_IPV4 => {
            let vihl = *frame.get(l3).ok_or(WireError::Truncated)?;
            let ihl = usize::from(vihl & 0x0f) * 4;
            let hdr = frame.get(l3..l3 + ihl).ok_or(WireError::Truncated)?;
            if ones_sum(hdr) != 0xffff {
                return Err(WireError::ChecksumMismatch("IPv4 header"));
            }
            let proto = *frame.get(l3 + 9).ok_or(WireError::Truncated)?;
            (AddrFamily::V4, proto, l3 + ihl)
        }
        ETHERTYPE_IPV6 => {
            let next = *frame.get(l3 + 6).ok_or(WireError::Truncated)?;
            (AddrFamily::V6, next, l3 + IPV6_HDR_LEN)
        }
        _ => return Err(WireError::UnsupportedEtherType(ethertype)),
    };
    match proto {
        6 | 17 => {
            let seg = frame.get(l4..).ok_or(WireError::Truncated)?;
            if proto == 17 {
                let stored = read16(frame, l4 + 6)?;
                if stored == 0 {
                    return Ok(()); // UDP checksum not in use.
                }
            }
            let pseudo = pseudo_header_sum(frame, l3, l4, family, proto)?;
            if combine(&[pseudo, ones_sum(seg)]) != 0xffff {
                return Err(WireError::ChecksumMismatch(if proto == 6 {
                    "TCP"
                } else {
                    "UDP"
                }));
            }
            Ok(())
        }
        // One tunnel level: validate the inner packet too.
        p if p == IPPROTO_IPIP => verify_ip(frame, l4, ETHERTYPE_IPV4, depth + 1),
        p if p == IPPROTO_IPV6 => verify_ip(frame, l4, ETHERTYPE_IPV6, depth + 1),
        other => Err(WireError::UnsupportedL4(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{build_frame, FrameSpec};
    use crate::parse::parse_frame;
    use sr_types::{Addr, Dip, FiveTuple, Protocol, TcpFlags};

    fn build(tuple: FiveTuple, len: u32) -> Vec<u8> {
        let mut buf = vec![0u8; 4096];
        let n = build_frame(
            &FrameSpec {
                tuple,
                flags: TcpFlags::ACK,
                wire_len: len,
                seq: 3,
            },
            &mut buf,
        )
        .unwrap();
        buf.truncate(n);
        buf
    }

    fn v4_tuple() -> FiveTuple {
        FiveTuple::tcp(Addr::v4(100, 0, 0, 9, 33000), Addr::v4(20, 0, 0, 1, 80))
    }

    fn v6_tuple() -> FiveTuple {
        FiveTuple::tcp(Addr::v6_indexed(9, 1, 33000), Addr::v6_indexed(0x20, 0, 80))
    }

    #[test]
    fn nat_rewrites_dst_and_keeps_checksums_valid() {
        for (tuple, dip) in [
            (v4_tuple(), Dip(Addr::v4(10, 0, 0, 7, 8080))),
            (v6_tuple(), Dip(Addr::v6_indexed(0x10, 7, 8080))),
        ] {
            let frame = build(tuple, 200);
            verify_checksums(&frame).unwrap();
            let parsed = parse_frame(&frame).unwrap();
            let mut out = vec![0u8; frame.len() + ENCAP_HEADROOM];
            let op = RewriteOp {
                dip,
                mode: RewriteMode::Nat,
            };
            let n = rewrite_frame(&frame, &parsed.view, &op, &mut out).unwrap();
            assert_eq!(n, frame.len());
            verify_checksums(&out[..n]).unwrap();
            let reparsed = parse_frame(&out[..n]).unwrap();
            assert_eq!(reparsed.meta.tuple.dst, dip.0);
            assert_eq!(reparsed.meta.tuple.src, tuple.src);
        }
    }

    #[test]
    fn nat_udp_zero_checksum_left_alone() {
        let tuple = FiveTuple {
            src: Addr::v4(100, 0, 0, 9, 5000),
            dst: Addr::v4(20, 0, 0, 1, 53),
            proto: Protocol::Udp,
        };
        let mut frame = build(tuple, 100);
        let parsed = parse_frame(&frame).unwrap();
        let ck_off = parsed.view.l4 as usize + 6;
        frame[ck_off] = 0;
        frame[ck_off + 1] = 0;
        // The IPv4 header checksum is still intact; fix nothing else.
        let mut out = vec![0u8; frame.len() + ENCAP_HEADROOM];
        let op = RewriteOp {
            dip: Dip(Addr::v4(10, 0, 0, 7, 53)),
            mode: RewriteMode::Nat,
        };
        let n = rewrite_frame(&frame, &parsed.view, &op, &mut out).unwrap();
        assert_eq!(&out[ck_off..ck_off + 2], &[0, 0], "zero cksum preserved");
        verify_checksums(&out[..n]).unwrap();
    }

    #[test]
    fn encap_prepends_outer_header_and_preserves_inner() {
        for (tuple, dip, extra) in [
            (v4_tuple(), Dip(Addr::v4(10, 0, 0, 7, 8080)), IPV4_HDR_LEN),
            (
                v6_tuple(),
                Dip(Addr::v6_indexed(0x10, 7, 8080)),
                IPV6_HDR_LEN,
            ),
        ] {
            let frame = build(tuple, 150);
            let parsed = parse_frame(&frame).unwrap();
            let mut out = vec![0u8; frame.len() + ENCAP_HEADROOM];
            let op = RewriteOp {
                dip,
                mode: RewriteMode::Encap,
            };
            let n = rewrite_frame(&frame, &parsed.view, &op, &mut out).unwrap();
            assert_eq!(n, frame.len() + extra);
            verify_checksums(&out[..n]).unwrap();
            // Inner packet is byte-identical.
            let l3 = parsed.view.l3 as usize;
            assert_eq!(&out[n - (frame.len() - l3)..n], &frame[l3..]);
        }
    }

    #[test]
    fn family_mismatch_is_rejected() {
        let frame = build(v4_tuple(), 100);
        let parsed = parse_frame(&frame).unwrap();
        let mut out = vec![0u8; frame.len() + ENCAP_HEADROOM];
        let op = RewriteOp {
            dip: Dip(Addr::v6_indexed(0x10, 7, 8080)),
            mode: RewriteMode::Nat,
        };
        assert_eq!(
            rewrite_frame(&frame, &parsed.view, &op, &mut out),
            Err(WireError::FamilyMismatch)
        );
    }

    #[test]
    fn corrupted_frame_fails_verification() {
        let mut frame = build(v4_tuple(), 120);
        verify_checksums(&frame).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        assert!(matches!(
            verify_checksums(&frame),
            Err(WireError::ChecksumMismatch(_))
        ));
    }

    #[test]
    fn small_output_buffer_is_an_error() {
        let frame = build(v4_tuple(), 100);
        let parsed = parse_frame(&frame).unwrap();
        let mut out = vec![0u8; 10];
        let op = RewriteOp {
            dip: Dip(Addr::v4(10, 0, 0, 7, 80)),
            mode: RewriteMode::Nat,
        };
        assert_eq!(
            rewrite_frame(&frame, &parsed.view, &op, &mut out),
            Err(WireError::BufferTooSmall)
        );
    }
}
