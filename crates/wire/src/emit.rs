//! Frame synthesis: turn a 5-tuple + flags + length into a valid
//! Ethernet/IP/TCP|UDP frame.
//!
//! This is the inverse of [`crate::parse::parse_frame`] — the property
//! suite proves `parse(build(spec))` recovers the spec exactly. The
//! exporter uses it to materialize `sr_workload` synthetic traces as pcap
//! files, and the unit/property tests use it as their frame source.
//! Deterministic: the same spec always yields the same bytes (MACs, IP id,
//! TCP sequence number, and payload are all derived from `seq`).

use crate::checksum::{checksum, combine, ones_sum};
use crate::WireError;
use sr_types::frame::{
    ETHERTYPE_IPV4, ETHERTYPE_IPV6, ETH_HDR_LEN, IPV4_HDR_LEN, IPV6_HDR_LEN, TCP_HDR_LEN,
    UDP_HDR_LEN,
};
use sr_types::{AddrFamily, FiveTuple, Protocol, TcpFlags};
use std::net::IpAddr;

/// Everything needed to synthesize one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameSpec {
    /// Connection 5-tuple (src/dst address family must match).
    pub tuple: FiveTuple,
    /// TCP flags (ignored for UDP).
    pub flags: TcpFlags,
    /// Desired total frame length in bytes; raised to the header minimum
    /// when too small. Excess becomes deterministic payload bytes.
    pub wire_len: u32,
    /// Deterministic salt: drives MACs, IP id, TCP seq, payload pattern.
    pub seq: u64,
}

/// Smallest frame that can carry `tuple` (all headers, no payload).
pub fn min_frame_len(tuple: &FiveTuple) -> usize {
    let ip = match tuple.family() {
        AddrFamily::V4 => IPV4_HDR_LEN,
        AddrFamily::V6 => IPV6_HDR_LEN,
    };
    let l4 = match tuple.proto {
        Protocol::Tcp => TCP_HDR_LEN,
        Protocol::Udp => UDP_HDR_LEN,
    };
    ETH_HDR_LEN + ip + l4
}

fn put16(out: &mut [u8], at: usize, v: u16) {
    out[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

/// Build the frame described by `spec` into `out`, returning its length.
///
/// All checksums (IPv4 header, TCP/UDP with pseudo-header) are computed so
/// the emitted frame passes [`crate::rewrite::verify_checksums`]. Errors if
/// `out` is too small or the length exceeds what an IP header can describe.
pub fn build_frame(spec: &FrameSpec, out: &mut [u8]) -> Result<usize, WireError> {
    let tuple = spec.tuple;
    if tuple.src.family() != tuple.dst.family() {
        return Err(WireError::FamilyMismatch);
    }
    let len = (spec.wire_len as usize).max(min_frame_len(&tuple));
    if len - ETH_HDR_LEN > usize::from(u16::MAX) {
        return Err(WireError::BadHeader("frame too long for an IP header"));
    }
    if out.len() < len {
        return Err(WireError::BufferTooSmall);
    }
    let out = &mut out[..len];

    // Ethernet: fixed destination (the load balancer), source derived
    // from the connection sequence number.
    out[0..6].copy_from_slice(&[0x02, 0x53, 0x52, 0x00, 0x00, 0x01]);
    out[6..12].copy_from_slice(&[
        0x02,
        0x53,
        0x52,
        (spec.seq >> 16) as u8,
        (spec.seq >> 8) as u8,
        spec.seq as u8,
    ]);

    let l3 = ETH_HDR_LEN;
    let (l4, family) = match (tuple.src.ip, tuple.dst.ip) {
        (IpAddr::V4(src), IpAddr::V4(dst)) => {
            put16(out, 12, ETHERTYPE_IPV4);
            out[l3] = 0x45;
            out[l3 + 1] = 0;
            put16(out, l3 + 2, (len - l3) as u16);
            put16(out, l3 + 4, spec.seq as u16); // identification
            put16(out, l3 + 6, 0x4000); // DF, no fragment offset
            out[l3 + 8] = 64; // TTL
            out[l3 + 9] = tuple.proto.number();
            put16(out, l3 + 10, 0); // checksum placeholder
            out[l3 + 12..l3 + 16].copy_from_slice(&src.octets());
            out[l3 + 16..l3 + 20].copy_from_slice(&dst.octets());
            let ck = checksum(&out[l3..l3 + IPV4_HDR_LEN]);
            put16(out, l3 + 10, ck);
            (l3 + IPV4_HDR_LEN, AddrFamily::V4)
        }
        (IpAddr::V6(src), IpAddr::V6(dst)) => {
            put16(out, 12, ETHERTYPE_IPV6);
            out[l3] = 0x60;
            out[l3 + 1] = 0;
            put16(out, l3 + 2, 0); // flow label low bits
            put16(out, l3 + 4, (len - l3 - IPV6_HDR_LEN) as u16);
            out[l3 + 6] = tuple.proto.number();
            out[l3 + 7] = 64; // hop limit
            out[l3 + 8..l3 + 24].copy_from_slice(&src.octets());
            out[l3 + 24..l3 + 40].copy_from_slice(&dst.octets());
            (l3 + IPV6_HDR_LEN, AddrFamily::V6)
        }
        _ => return Err(WireError::FamilyMismatch),
    };

    let (payload, ck_off) = match tuple.proto {
        Protocol::Tcp => {
            put16(out, l4, tuple.src.port);
            put16(out, l4 + 2, tuple.dst.port);
            out[l4 + 4..l4 + 8].copy_from_slice(&(spec.seq as u32).to_be_bytes());
            out[l4 + 8..l4 + 12].copy_from_slice(&[0, 0, 0, 0]); // ack
            out[l4 + 12] = 0x50; // data offset 5, no options
            out[l4 + 13] = spec.flags.0;
            put16(out, l4 + 14, 0xffff); // window
            put16(out, l4 + 16, 0); // checksum placeholder
            put16(out, l4 + 18, 0); // urgent pointer
            (l4 + TCP_HDR_LEN, l4 + 16)
        }
        Protocol::Udp => {
            put16(out, l4, tuple.src.port);
            put16(out, l4 + 2, tuple.dst.port);
            put16(out, l4 + 4, (len - l4) as u16);
            put16(out, l4 + 6, 0); // checksum placeholder
            (l4 + UDP_HDR_LEN, l4 + 6)
        }
    };

    // Deterministic non-zero payload so checksum bugs cannot hide behind
    // all-zero bytes.
    for (i, b) in out[payload..].iter_mut().enumerate() {
        *b = (spec.seq as u8)
            .wrapping_mul(167)
            .wrapping_add((i as u8).wrapping_mul(31))
            .wrapping_add(7);
    }

    // L4 checksum over pseudo-header + segment.
    let seg_len = (len - l4) as u16;
    let pseudo = match family {
        AddrFamily::V4 => combine(&[
            ones_sum(&out[l3 + 12..l3 + 20]),
            u16::from(tuple.proto.number()),
            seg_len,
        ]),
        AddrFamily::V6 => combine(&[
            ones_sum(&out[l3 + 8..l3 + 40]),
            u16::from(tuple.proto.number()),
            seg_len,
        ]),
    };
    let mut ck = !combine(&[pseudo, ones_sum(&out[l4..])]);
    if tuple.proto == Protocol::Udp && ck == 0 {
        ck = 0xffff; // RFC 768: zero means "no checksum".
    }
    put16(out, ck_off, ck);
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::verify_checksums;
    use sr_types::Addr;

    #[test]
    fn min_lengths() {
        let t = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 1), Addr::v4(5, 6, 7, 8, 2));
        assert_eq!(min_frame_len(&t), 54);
        let t6 = FiveTuple::tcp(Addr::v6_indexed(1, 0, 1), Addr::v6_indexed(2, 0, 2));
        assert_eq!(min_frame_len(&t6), 74);
        let u = FiveTuple {
            proto: Protocol::Udp,
            ..t
        };
        assert_eq!(min_frame_len(&u), 42);
    }

    #[test]
    fn built_frames_have_valid_checksums() {
        let mut buf = [0u8; 2048];
        for proto in [Protocol::Tcp, Protocol::Udp] {
            for (src, dst) in [
                (Addr::v4(100, 1, 2, 3, 40000), Addr::v4(20, 0, 0, 1, 80)),
                (
                    Addr::v6_indexed(5, 77, 40000),
                    Addr::v6_indexed(0x20, 1, 80),
                ),
            ] {
                let spec = FrameSpec {
                    tuple: FiveTuple { src, dst, proto },
                    flags: TcpFlags::SYN,
                    wire_len: 333,
                    seq: 99,
                };
                let n = build_frame(&spec, &mut buf).unwrap();
                assert_eq!(n, 333);
                verify_checksums(&buf[..n]).unwrap();
            }
        }
    }

    #[test]
    fn deterministic_bytes() {
        let spec = FrameSpec {
            tuple: FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 5), Addr::v4(9, 8, 7, 6, 80)),
            flags: TcpFlags::ACK,
            wire_len: 128,
            seq: 42,
        };
        let mut a = [0u8; 256];
        let mut b = [0u8; 256];
        let na = build_frame(&spec, &mut a).unwrap();
        let nb = build_frame(&spec, &mut b).unwrap();
        assert_eq!(a[..na], b[..nb]);
    }

    #[test]
    fn mixed_family_tuple_rejected() {
        let spec = FrameSpec {
            tuple: FiveTuple {
                src: Addr::v4(1, 2, 3, 4, 5),
                dst: Addr::v6_indexed(1, 0, 80),
                proto: Protocol::Tcp,
            },
            flags: TcpFlags::SYN,
            wire_len: 100,
            seq: 0,
        };
        let mut buf = [0u8; 256];
        assert_eq!(build_frame(&spec, &mut buf), Err(WireError::FamilyMismatch));
    }
}
