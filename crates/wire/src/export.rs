//! Export an `sr_workload` synthetic trace as a pcap capture.
//!
//! Each connection becomes a SYN frame at its arrival, up to
//! `max_data_pkts` full-size data frames spaced by the flow's packet gap,
//! and a FIN at its close — all globally time-sorted by merging the
//! per-flow schedules through one binary heap, so the capture replays
//! with monotone timestamps. Frames are synthesized by
//! [`crate::emit::build_frame`], i.e. they carry valid IP/TCP checksums
//! and parse back to exactly the [`PacketMeta`] stream the in-memory
//! simulator would have seen (the whole point: `repro replay` can diff
//! its decisions against a switch fed directly from the trace).
//!
//! DIP-pool update events in the trace are *not* representable in a pcap
//! (they are control-plane, not packets); they are counted and skipped.
//! The replay driver injects its own deterministic update instead.

use crate::emit::{build_frame, FrameSpec};
use crate::pcap::PcapWriter;
use sr_types::{Nanos, PacketMeta, TcpFlags};
use sr_workload::{TraceConfig, TraceEvent, TraceIter};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, Write};

/// Counters from one export run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Frames written.
    pub frames: u64,
    /// Connections exported.
    pub conns: u64,
    /// Payload bytes written (sum of frame lengths).
    pub bytes: u64,
    /// Control-plane update events skipped (not representable as frames).
    pub updates_skipped: u64,
}

/// One scheduled frame awaiting its timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending {
    at: u64,
    order: u64,
    spec: FrameSpec,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Stream `cfg`'s trace into `writer` as Ethernet frames.
///
/// `max_data_pkts` caps the data frames per flow (SYN and FIN are always
/// emitted), bounding the capture size for long flows. `on_frame` fires
/// once per written frame with its timestamp and the metadata the frame
/// encodes — replay tests use it to capture the expected packet stream
/// without re-parsing.
pub fn export_trace<W: Write>(
    cfg: &TraceConfig,
    max_data_pkts: u32,
    writer: &mut PcapWriter<W>,
    mut on_frame: impl FnMut(Nanos, &PacketMeta),
) -> io::Result<ExportStats> {
    let mut stats = ExportStats::default();
    let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
    let mut order = 0u64;
    let mut buf = [0u8; 2048];

    let flush_until = |deadline: u64,
                       heap: &mut BinaryHeap<Reverse<Pending>>,
                       stats: &mut ExportStats,
                       on_frame: &mut dyn FnMut(Nanos, &PacketMeta),
                       writer: &mut PcapWriter<W>,
                       buf: &mut [u8]|
     -> io::Result<()> {
        while heap.peek().is_some_and(|Reverse(p)| p.at <= deadline) {
            let Some(Reverse(p)) = heap.pop() else { break };
            let n = build_frame(&p.spec, buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            let ts = Nanos(p.at);
            writer.write_frame(ts, &buf[..n])?;
            stats.frames += 1;
            stats.bytes += n as u64;
            let meta = PacketMeta {
                tuple: p.spec.tuple,
                flags: p.spec.flags,
                len: n as u32,
            };
            on_frame(ts, &meta);
        }
        Ok(())
    };

    for ev in TraceIter::new(*cfg) {
        let now = ev.at().0;
        flush_until(now, &mut heap, &mut stats, &mut on_frame, writer, &mut buf)?;
        match ev {
            TraceEvent::Update(_) => stats.updates_skipped += 1,
            TraceEvent::ConnOpen(c) => {
                stats.conns += 1;
                let mut push = |at: u64, flags: TcpFlags, wire_len: u32| {
                    heap.push(Reverse(Pending {
                        at,
                        order,
                        spec: FrameSpec {
                            tuple: c.tuple,
                            flags,
                            wire_len,
                            seq: c.seq.0,
                        },
                    }));
                    order += 1;
                };
                push(c.opened.0, TcpFlags::SYN, 0);
                let gap = c.pkt_gap.0.max(1);
                let data_pkts = c.packets().min(u64::from(max_data_pkts));
                for k in 0..data_pkts {
                    let at = c.opened.0.saturating_add(gap.saturating_mul(k + 1));
                    if at >= c.closes().0 {
                        break;
                    }
                    push(at, TcpFlags::ACK, c.pkt_len);
                }
                push(c.closes().0, TcpFlags::FIN.with(TcpFlags::ACK), 0);
            }
        }
    }
    flush_until(
        u64::MAX,
        &mut heap,
        &mut stats,
        &mut on_frame,
        writer,
        &mut buf,
    )?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_frame;
    use crate::pcap::PcapReader;
    use crate::rewrite::verify_checksums;
    use sr_types::{AddrFamily, Duration};

    fn tiny_cfg() -> TraceConfig {
        TraceConfig {
            vips: 4,
            dips_per_vip: 3,
            new_conns_per_min: 300.0,
            median_flow_secs: 5.0,
            flow_sigma: 0.8,
            median_rate_bps: 100_000.0,
            rate_sigma: 0.5,
            median_pkt_bytes: 800.0,
            pkt_sigma: 0.35,
            updates_per_min: 2.0,
            shared_dip_upgrades: false,
            duration: Duration::from_secs(60),
            family: AddrFamily::V4,
            seed: 0xfeed,
        }
    }

    #[test]
    fn export_is_sorted_valid_and_matches_callback() {
        let mut expected: Vec<(Nanos, PacketMeta)> = Vec::new();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let stats = export_trace(&tiny_cfg(), 4, &mut w, |ts, m| expected.push((ts, *m))).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(stats.frames, expected.len() as u64);
        assert!(stats.frames >= 3 * stats.conns.min(10), "SYN+data+FIN each");
        assert!(stats.updates_skipped > 0);

        let mut last = Nanos::ZERO;
        let mut n = 0u64;
        for (rec, (ts, meta)) in PcapReader::new(&bytes)
            .unwrap()
            .map(|r| r.unwrap())
            .zip(&expected)
        {
            assert!(rec.ts >= last, "timestamps must be monotone");
            last = rec.ts;
            // pcap rounds to microseconds.
            assert_eq!(rec.ts.0, ts.0 / 1_000 * 1_000);
            verify_checksums(rec.data).unwrap();
            let parsed = parse_frame(rec.data).unwrap();
            assert_eq!(parsed.meta, *meta);
            n += 1;
        }
        assert_eq!(n, stats.frames);
    }

    #[test]
    fn export_is_deterministic() {
        let mut w1 = PcapWriter::new(Vec::new()).unwrap();
        let mut w2 = PcapWriter::new(Vec::new()).unwrap();
        export_trace(&tiny_cfg(), 4, &mut w1, |_, _| {}).unwrap();
        export_trace(&tiny_cfg(), 4, &mut w2, |_, _| {}).unwrap();
        assert_eq!(w1.finish().unwrap(), w2.finish().unwrap());
    }

    #[test]
    fn v6_traces_export_too() {
        let mut cfg = tiny_cfg();
        cfg.family = AddrFamily::V6;
        cfg.duration = Duration::from_secs(20);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let stats = export_trace(&cfg, 2, &mut w, |_, _| {}).unwrap();
        let bytes = w.finish().unwrap();
        assert!(stats.frames > 0);
        for rec in PcapReader::new(&bytes).unwrap() {
            let rec = rec.unwrap();
            let parsed = parse_frame(rec.data).unwrap();
            assert_eq!(parsed.view.family, AddrFamily::V6);
            verify_checksums(rec.data).unwrap();
        }
    }
}
