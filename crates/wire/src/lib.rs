//! Wire-format codec for the SilkRoad reproduction: real packets in and
//! out of the simulated switch.
//!
//! The rest of the workspace models the data plane over [`PacketMeta`]
//! abstractions; this crate closes the loop with actual bytes:
//!
//! * [`parse`] — zero-copy, allocation-free, panic-free parsing of
//!   Ethernet → IPv4/IPv6 → TCP/UDP frames into [`PacketMeta`] +
//!   [`FrameView`](sr_types::FrameView);
//! * [`rewrite`] — applying a forwarding decision back onto the frame:
//!   L4 NAT with RFC 1624 incremental checksum updates, or IP-in-IP
//!   encapsulation, into a caller-provided buffer;
//! * [`checksum`] — the one's-complement arithmetic both sides share;
//! * [`emit`] — deterministic frame synthesis (the parser's inverse);
//! * [`stamp`] — DSCP pool-version stamping (the Concury zoo member's
//!   version-in-packet steering, `sr_algo::concury`, realized on the
//!   wire);
//! * [`pcap`] — classic pcap reading (zero-copy) and writing, no
//!   external dependencies;
//! * [`export`] — turning an `sr_workload` synthetic trace into a pcap
//!   capture that `repro replay` can stream through the switch.
//!
//! [`PacketMeta`]: sr_types::PacketMeta

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod emit;
pub mod export;
pub mod parse;
pub mod pcap;
pub mod rewrite;
pub mod stamp;

pub use emit::{build_frame, min_frame_len, FrameSpec};
pub use export::{export_trace, ExportStats};
pub use parse::{parse_frame, Parsed};
pub use pcap::{PcapReader, PcapRecord, PcapWriter};
pub use rewrite::{rewrite_frame, verify_checksums, ENCAP_HEADROOM};
pub use stamp::{parse_version, stamp_version, MAX_VERSION};

use std::fmt;

/// Everything that can go wrong parsing, rewriting, or replaying frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ends before the header being read.
    Truncated,
    /// A header field has an impossible value.
    BadHeader(&'static str),
    /// Not IPv4 or IPv6.
    UnsupportedEtherType(u16),
    /// Not TCP or UDP (or a recognised tunnel).
    UnsupportedL4(u8),
    /// A DIP's address family differs from the frame's.
    FamilyMismatch,
    /// The caller-provided output buffer cannot hold the result.
    BufferTooSmall,
    /// Full recomputation disagrees with a stored checksum.
    ChecksumMismatch(&'static str),
    /// The pcap container itself is malformed.
    BadPcap(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-header"),
            WireError::BadHeader(what) => write!(f, "bad header: {what}"),
            WireError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            WireError::UnsupportedL4(p) => write!(f, "unsupported L4 protocol {p}"),
            WireError::FamilyMismatch => write!(f, "address family mismatch"),
            WireError::BufferTooSmall => write!(f, "output buffer too small"),
            WireError::ChecksumMismatch(what) => write!(f, "{what} checksum mismatch"),
            WireError::BadPcap(what) => write!(f, "bad pcap: {what}"),
        }
    }
}

impl std::error::Error for WireError {}
