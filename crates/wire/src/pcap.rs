//! Classic pcap (libpcap capture file) reader and writer, no external
//! dependencies.
//!
//! Only the original format is implemented (magic `0xa1b2c3d4`,
//! microsecond timestamps, version 2.4, LINKTYPE_ETHERNET), which every
//! capture tool can read and write. The reader is zero-copy: it borrows
//! record payloads straight out of the input slice, so replaying a
//! 100 MB capture allocates nothing per frame. Both byte orders are
//! accepted on read (the magic doubles as the endianness probe); the
//! writer always emits little-endian.

use crate::WireError;
use sr_types::{Duration, Nanos};
use std::io::{self, Write};

/// Classic pcap magic, microsecond timestamps.
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Global header length.
pub const PCAP_GLOBAL_HDR_LEN: usize = 24;
/// Per-record header length.
pub const PCAP_RECORD_HDR_LEN: usize = 16;
/// Snap length we write (and the largest record we accept): no frame in
/// a classic capture exceeds 64 KiB.
pub const PCAP_SNAPLEN: u32 = 65_535;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// One captured frame, borrowed from the reader's input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcapRecord<'a> {
    /// Capture timestamp (seconds + microseconds, as nanoseconds).
    pub ts: Nanos,
    /// Original frame length on the wire (equals `data.len()` unless the
    /// capture truncated the frame at the snap length).
    pub orig_len: u32,
    /// The captured bytes.
    pub data: &'a [u8],
}

/// Streaming pcap writer over any [`io::Write`] sink.
pub struct PcapWriter<W: Write> {
    sink: W,
    frames: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and wrap `sink`.
    pub fn new(mut sink: W) -> io::Result<PcapWriter<W>> {
        let mut hdr = [0u8; PCAP_GLOBAL_HDR_LEN];
        hdr[0..4].copy_from_slice(&PCAP_MAGIC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
                                                        // thiszone (4) and sigfigs (4) stay zero.
        hdr[16..20].copy_from_slice(&PCAP_SNAPLEN.to_le_bytes());
        hdr[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        sink.write_all(&hdr)?;
        Ok(PcapWriter { sink, frames: 0 })
    }

    /// Append one frame captured at `ts`.
    pub fn write_frame(&mut self, ts: Nanos, frame: &[u8]) -> io::Result<()> {
        if frame.len() > PCAP_SNAPLEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame exceeds pcap snap length",
            ));
        }
        let since = ts.0;
        let secs = (since / 1_000_000_000) as u32;
        let usecs = ((since % 1_000_000_000) / 1_000) as u32;
        let len = frame.len() as u32;
        let mut hdr = [0u8; PCAP_RECORD_HDR_LEN];
        hdr[0..4].copy_from_slice(&secs.to_le_bytes());
        hdr[4..8].copy_from_slice(&usecs.to_le_bytes());
        hdr[8..12].copy_from_slice(&len.to_le_bytes());
        hdr[12..16].copy_from_slice(&len.to_le_bytes());
        self.sink.write_all(&hdr)?;
        self.sink.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush and return the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Zero-copy pcap reader: iterates [`PcapRecord`]s borrowed from a byte
/// slice.
pub struct PcapReader<'a> {
    buf: &'a [u8],
    at: usize,
    swapped: bool,
}

impl<'a> PcapReader<'a> {
    /// Parse the global header of `buf` and position at the first record.
    pub fn new(buf: &'a [u8]) -> Result<PcapReader<'a>, WireError> {
        let magic_bytes = buf
            .get(0..4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .ok_or(WireError::BadPcap("missing global header"))?;
        let swapped = match u32::from_le_bytes(magic_bytes) {
            PCAP_MAGIC => false,
            m if m.swap_bytes() == PCAP_MAGIC => true,
            _ => return Err(WireError::BadPcap("bad magic (not a classic pcap?)")),
        };
        if buf.len() < PCAP_GLOBAL_HDR_LEN {
            return Err(WireError::BadPcap("truncated global header"));
        }
        let rd = |at: usize| read_u32(buf, at, swapped);
        let linktype = rd(20).ok_or(WireError::BadPcap("truncated global header"))?;
        if linktype != LINKTYPE_ETHERNET {
            return Err(WireError::BadPcap("linktype is not Ethernet"));
        }
        Ok(PcapReader {
            buf,
            at: PCAP_GLOBAL_HDR_LEN,
            swapped,
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.at)
    }
}

fn read_u32(buf: &[u8], at: usize, swapped: bool) -> Option<u32> {
    let s = buf.get(at..at.checked_add(4)?)?;
    let v = u32::from_le_bytes(<[u8; 4]>::try_from(s).ok()?);
    Some(if swapped { v.swap_bytes() } else { v })
}

impl<'a> Iterator for PcapReader<'a> {
    type Item = Result<PcapRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.at >= self.buf.len() {
            return None;
        }
        let rd = |at: usize| read_u32(self.buf, at, self.swapped);
        let (Some(secs), Some(usecs), Some(incl), Some(orig)) = (
            rd(self.at),
            rd(self.at + 4),
            rd(self.at + 8),
            rd(self.at + 12),
        ) else {
            self.at = self.buf.len();
            return Some(Err(WireError::BadPcap("truncated record header")));
        };
        if incl > PCAP_SNAPLEN {
            self.at = self.buf.len();
            return Some(Err(WireError::BadPcap("record exceeds snap length")));
        }
        let start = self.at + PCAP_RECORD_HDR_LEN;
        let Some(data) = self.buf.get(start..start + incl as usize) else {
            self.at = self.buf.len();
            return Some(Err(WireError::BadPcap("truncated record body")));
        };
        self.at = start + incl as usize;
        let ts = Nanos::ZERO
            + Duration::from_nanos(u64::from(secs) * 1_000_000_000 + u64::from(usecs) * 1_000);
        Some(Ok(PcapRecord {
            ts,
            orig_len: orig,
            data,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frames: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (ns, f) in frames {
            let ts = Nanos::ZERO + Duration::from_nanos(*ns);
            w.write_frame(ts, f).unwrap();
        }
        assert_eq!(w.frames(), frames.len() as u64);
        w.finish().unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let frames = vec![
            (0u64, vec![1u8; 60]),
            (1_500_000_000, vec![2u8; 1500]),
            (3_000_001_000, vec![3u8; 64]),
        ];
        let bytes = roundtrip(&frames);
        assert_eq!(
            bytes.len(),
            PCAP_GLOBAL_HDR_LEN + frames.iter().map(|(_, f)| 16 + f.len()).sum::<usize>()
        );
        let got: Vec<PcapRecord> = PcapReader::new(&bytes)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got.len(), 3);
        for ((ns, f), rec) in frames.iter().zip(&got) {
            // Timestamps round down to microseconds.
            let us = ns / 1000 * 1000;
            assert_eq!(rec.ts, Nanos::ZERO + Duration::from_nanos(us));
            assert_eq!(rec.data, &f[..]);
            assert_eq!(rec.orig_len as usize, f.len());
        }
    }

    #[test]
    fn big_endian_captures_are_readable() {
        // Hand-build a big-endian capture with one 4-byte record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&PCAP_MAGIC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&PCAP_SNAPLEN.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // secs
        buf.extend_from_slice(&9u32.to_be_bytes()); // usecs
        buf.extend_from_slice(&4u32.to_be_bytes()); // incl
        buf.extend_from_slice(&4u32.to_be_bytes()); // orig
        buf.extend_from_slice(&[0xaa, 0xbb, 0xcc, 0xdd]);
        let recs: Vec<PcapRecord> = PcapReader::new(&buf).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data, &[0xaa, 0xbb, 0xcc, 0xdd]);
        assert_eq!(
            recs[0].ts,
            Nanos::ZERO + Duration::from_nanos(7 * 1_000_000_000 + 9_000)
        );
    }

    #[test]
    fn garbage_and_truncation_are_errors() {
        assert!(PcapReader::new(&[1, 2, 3]).is_err());
        assert!(PcapReader::new(&[0u8; 24]).is_err());
        let good = roundtrip(&[(0, vec![5u8; 100])]);
        // Chop the record body.
        let cut = &good[..good.len() - 10];
        let last = PcapReader::new(cut).unwrap().last().unwrap();
        assert!(last.is_err());
        // A reader that errors terminates.
        assert_eq!(PcapReader::new(cut).unwrap().count(), 1);
    }

    #[test]
    fn oversized_frame_rejected_on_write() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let huge = vec![0u8; PCAP_SNAPLEN as usize + 1];
        assert!(w.write_frame(Nanos::ZERO, &huge).is_err());
    }
}
