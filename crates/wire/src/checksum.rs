//! Internet checksum arithmetic: full one's-complement sums and the
//! RFC 1624 incremental update the rewrite engine uses.
//!
//! The NAT path changes at most 18 bytes of a frame (destination address
//! and port); recomputing a TCP checksum over a 1500-byte segment for that
//! would dominate the rewrite cost. RFC 1624 eqn. 3 updates the stored
//! checksum from only the changed words:
//!
//! ```text
//! HC' = ~(~HC + ~m + m')
//! ```
//!
//! computed in one's-complement arithmetic. `tests/properties.rs` proves
//! the incremental form bit-identical to a full recompute on random
//! headers (the representation of zero is the only theoretical divergence,
//! and it needs an all-zero checksummed span — impossible for real IP/TCP
//! headers, whose version field is never zero).

/// Fold a 32-bit accumulator into a 16-bit one's-complement sum.
#[inline]
fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

// srlint: hot-path begin
/// One's-complement sum of `data` interpreted as big-endian 16-bit words,
/// an odd trailing byte padded with zero (RFC 1071). This is the *sum*;
/// the checksum field stores its complement.
#[inline]
pub fn ones_sum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for w in chunks.by_ref() {
        let hi = w.first().copied().unwrap_or(0);
        let lo = w.get(1).copied().unwrap_or(0);
        sum += u32::from(u16::from_be_bytes([hi, lo]));
    }
    if let Some(&last) = chunks.remainder().first() {
        sum += u32::from(u16::from_be_bytes([last, 0]));
    }
    fold(sum)
}

/// Combine partial one's-complement sums (e.g. pseudo-header + segment).
#[inline]
pub fn combine(parts: &[u16]) -> u16 {
    let mut sum = 0u32;
    for &p in parts {
        sum += u32::from(p);
    }
    fold(sum)
}

/// The checksum field value for a span whose one's-complement sum is
/// `sum`: the complement.
#[inline]
pub fn checksum_from_sum(sum: u16) -> u16 {
    !sum
}

/// Full checksum of one contiguous span.
#[inline]
pub fn checksum(data: &[u8]) -> u16 {
    !ones_sum(data)
}

/// RFC 1624 (eqn. 3) incremental update: the stored checksum `field`,
/// after the covered bytes `old` were replaced by `new`. `old` and `new`
/// must have the same even length.
#[inline]
pub fn incremental_update(field: u16, old: &[u8], new: &[u8]) -> u16 {
    debug_assert_eq!(old.len(), new.len());
    debug_assert_eq!(old.len() % 2, 0);
    // ~HC is the original one's-complement sum.
    let mut sum = u32::from(!field);
    let olds = old.chunks_exact(2);
    let news = new.chunks_exact(2);
    for (o, n) in olds.zip(news) {
        let ow = u16::from_be_bytes([
            o.first().copied().unwrap_or(0),
            o.get(1).copied().unwrap_or(0),
        ]);
        let nw = u16::from_be_bytes([
            n.first().copied().unwrap_or(0),
            n.get(1).copied().unwrap_or(0),
        ]);
        sum += u32::from(!ow);
        sum += u32::from(nw);
    }
    !fold(sum)
}
// srlint: hot-path end

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_ipv4_header_checksum() {
        // Classic example header (from RFC 1071 discussions): checksum
        // field zeroed for computation.
        let hdr: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&hdr), 0xb861);
        // A header carrying its own correct checksum sums to 0xffff.
        let mut full = hdr;
        full[10..12].copy_from_slice(&0xb861u16.to_be_bytes());
        assert_eq!(ones_sum(&full), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(
            ones_sum(&[0x12, 0x34, 0x56]),
            ones_sum(&[0x12, 0x34, 0x56, 0x00])
        );
    }

    #[test]
    fn incremental_matches_full_on_simple_change() {
        let mut data = vec![0u8; 40];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let before = checksum(&data);
        let old = [data[16], data[17], data[18], data[19]];
        let new = [0xde, 0xad, 0xbe, 0xef];
        data[16..20].copy_from_slice(&new);
        let full = checksum(&data);
        assert_eq!(incremental_update(before, &old, &new), full);
    }

    #[test]
    fn combine_is_order_independent() {
        let a = ones_sum(&[1, 2, 3, 4]);
        let b = ones_sum(&[9, 9, 200, 1]);
        assert_eq!(combine(&[a, b]), combine(&[b, a]));
        assert_eq!(combine(&[a, b]), ones_sum(&[1, 2, 3, 4, 9, 9, 200, 1]));
    }
}
