//! Property-based tests for the wire crate.
//!
//! Two acceptance-critical properties:
//!
//! 1. **RFC 1624 incremental checksum updates are exact**: for any header
//!    words and any single-word change, [`checksum::incremental_update`]
//!    yields the same checksum as recomputing from scratch. (The rewrite
//!    engine relies on this to patch IP/L4 checksums without summing the
//!    whole segment.)
//! 2. **Parse ∘ emit is the identity**: any frame built by
//!    [`build_frame`] parses back to exactly the spec's tuple, flags, and
//!    wire length — across families, protocols, and sizes.

use proptest::prelude::*;
use sr_types::{Addr, FiveTuple, Protocol, TcpFlags};
use sr_wire::checksum;
use sr_wire::{
    build_frame, min_frame_len, parse_frame, parse_version, stamp_version, verify_checksums,
    FrameSpec,
};

/// Replace the even-aligned span `[at, at + new.len())` of `data` with
/// `new` and check that the RFC 1624 incremental update of the stored
/// checksum equals a full recompute over the changed bytes.
fn incremental_matches_full(data: &[u8], at: usize, new: &[u8]) -> Result<(), TestCaseError> {
    let full_old = checksum::checksum(data);
    let mut changed = data.to_vec();
    let old: Vec<u8> = changed[at..at + new.len()].to_vec();
    changed[at..at + new.len()].copy_from_slice(new);
    let full_new = checksum::checksum(&changed);
    let inc = checksum::incremental_update(full_old, &old, new);
    prop_assert_eq!(
        inc,
        full_new,
        "incremental update diverged: len={} at={} old={:?} new={:?}",
        data.len(),
        at,
        old,
        new
    );
    Ok(())
}

/// Build an address of the requested family from raw entropy bits.
fn addr_from_bits(v6: bool, lo: u64, hi: u64, port: u16) -> Addr {
    let ip = if v6 {
        std::net::IpAddr::from(((u128::from(hi) << 64) | u128::from(lo)).to_be_bytes())
    } else {
        std::net::IpAddr::from((lo as u32).to_be_bytes())
    };
    Addr { ip, port }
}

fn arb_spec() -> impl Strategy<Value = FrameSpec> {
    (
        any::<bool>(),
        (any::<u64>(), any::<u64>(), any::<u16>()),
        (any::<u64>(), any::<u64>(), any::<u16>()),
        (any::<bool>(), any::<u8>(), 0u32..1600, any::<u64>()),
    )
        .prop_map(|(v6, s, d, rest)| {
            let (tcp, flags, wire_len, seq) = rest;
            FrameSpec {
                tuple: FiveTuple {
                    src: addr_from_bits(v6, s.0, s.1, s.2),
                    dst: addr_from_bits(v6, d.0, d.1, d.2),
                    proto: if tcp { Protocol::Tcp } else { Protocol::Udp },
                },
                flags: TcpFlags(flags),
                wire_len,
                seq,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// RFC 1624 incremental update == full recompute, one changed span of
    /// 2..=18 bytes (the rewriter's range: port-only up to v6 addr+port).
    #[test]
    fn incremental_checksum_matches_full_recompute(
        data in prop::collection::vec(any::<u8>(), 20..80usize).prop_map(|mut v| {
            v.truncate(v.len() & !1); // checksummed spans are word-aligned
            v
        }),
        at_raw in any::<usize>(),
        new in prop::collection::vec(any::<u8>(), 1..=9usize)
            .prop_map(|v| v.iter().flat_map(|&b| [b, b.wrapping_add(1)]).collect::<Vec<u8>>()),
    ) {
        // data is at least 20 bytes, new at most 18 — a span always fits.
        let at = (at_raw % (data.len() - new.len() + 1)) & !1;
        incremental_matches_full(&data, at, &new)?;
    }

    /// Chained incremental updates (several spans changed one at a time,
    /// as the rewriter does for address then port) also stay exact.
    #[test]
    fn chained_incremental_updates_stay_exact(
        data in prop::collection::vec(any::<u8>(), 8..48usize)
            .prop_map(|mut v| { v.truncate(v.len() & !1); v }),
        changes in prop::collection::vec((any::<usize>(), any::<u16>()), 1..6),
    ) {
        let mut current = data.clone();
        let mut ck = checksum::checksum(&current);
        for (at_raw, new) in changes {
            let at = (at_raw % (current.len() - 1)) & !1;
            let new = new.to_be_bytes();
            let old = [current[at], current[at + 1]];
            ck = checksum::incremental_update(ck, &old, &new);
            current[at..at + 2].copy_from_slice(&new);
        }
        let full = checksum::checksum(&current);
        prop_assert_eq!(ck, full);
    }

    /// parse(build(spec)) recovers the spec exactly, and the frame's
    /// checksums verify by full recompute.
    #[test]
    fn emit_parse_roundtrip_is_identity(spec in arb_spec()) {
        let mut buf = vec![0u8; 2048];
        let n = build_frame(&spec, &mut buf).unwrap();
        let frame = &buf[..n];
        prop_assert_eq!(n as u32, spec.wire_len.max(min_frame_len(&spec.tuple) as u32));
        verify_checksums(frame).unwrap();
        let p = parse_frame(frame).unwrap();
        prop_assert_eq!(p.meta.tuple, spec.tuple);
        prop_assert_eq!(p.meta.len, n as u32);
        match spec.tuple.proto {
            Protocol::Tcp => prop_assert_eq!(p.meta.flags, spec.flags),
            // UDP has no flags; the parser reports none.
            Protocol::Udp => prop_assert_eq!(p.meta.flags, TcpFlags::NONE),
        }
        prop_assert_eq!(usize::from(p.view.frame_len as u16), n);
    }

    /// Truncating a built frame anywhere never panics and never parses.
    #[test]
    fn truncated_frames_error_cleanly(spec in arb_spec(), cut_raw in any::<usize>()) {
        let mut buf = vec![0u8; 2048];
        let n = build_frame(&spec, &mut buf).unwrap();
        let cut = cut_raw % n;
        prop_assert!(parse_frame(&buf[..cut]).is_err());
    }

    /// Concury's version stamp round-trips losslessly through the wire
    /// for any frame (v4 and v6) and any 6-bit version: stamp → parse
    /// recovers the version, the checksums still verify, and the frame's
    /// 5-tuple — what the switch steers on — is untouched. Stamping twice
    /// (edge re-stamp after a pool update) behaves the same.
    #[test]
    fn version_stamp_roundtrip_is_lossless(
        spec in arb_spec(),
        version in 0u8..64,
        restamp_raw in 0u8..128,
    ) {
        // Low half: no re-stamp; high half: re-stamp with (raw - 64).
        let restamp = restamp_raw.checked_sub(64);
        let mut buf = vec![0u8; 2048];
        let n = build_frame(&spec, &mut buf).unwrap();
        buf.truncate(n);
        let before = parse_frame(&buf).unwrap();
        stamp_version(&mut buf, version).unwrap();
        let mut want = version;
        if let Some(v2) = restamp {
            stamp_version(&mut buf, v2).unwrap();
            want = v2;
        }
        prop_assert_eq!(parse_version(&buf).unwrap(), want);
        verify_checksums(&buf).unwrap();
        let after = parse_frame(&buf).unwrap();
        prop_assert_eq!(after.meta.tuple, before.meta.tuple);
        prop_assert_eq!(after.meta.flags, before.meta.flags);
        prop_assert_eq!(after.meta.len, before.meta.len);
    }
}
