// The clean base program the per-rule mutation fixtures are derived from.
// It must parse, analyze and lower without a single diagnostic; each
// srcNNN_*.p4 sibling breaks exactly one rule.

header eth_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
struct headers_t { eth_h eth; }
struct meta_t { bit<16> digest; bit<8> mark; bit<1> seen; bit<7> pad; }

parser p(packet_in pkt, out headers_t hdr, inout meta_t meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            16w0x0800 : tagged;
            default   : accept;
        };
    }
    state tagged { transition accept; }
}

control c(inout headers_t hdr, inout meta_t meta) {
    action mark(bit<8> m) { meta.mark = m; }
    action unmark() { meta.mark = 8w0; }
    @pragma stage 0
    table t {
        key = { hdr.eth.dst : exact; }
        actions = { mark; unmark; }
        size = 64;
        default_action = unmark();
    }
    @pragma stage 1
    @pragma transactional
    register<bit<1>>(64) seenreg;
    apply {
        if (t.apply().miss) {
            meta.seen = seenreg.execute(meta.digest);
        }
    }
}

header eth_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
