//! The parity gate: compiling the bundled `p4/silkroad.p4` must yield a
//! `PipelineProgram` resource-for-resource identical to the hand-built
//! reference the rest of the workspace runs on
//! (`SilkRoadConfig::default().pipeline_program()`), down to an identical
//! srcheck placement report. This is what turns `sr-asic` from a fixture
//! into a target: the P4 source is now the authoritative program text.

use silkroad::SilkRoadConfig;
use sr_asic::ChipSpec;

#[test]
fn lowered_silkroad_is_identical_to_hand_built_reference() {
    let lowered = sr_p4::compile(sr_p4::SILKROAD_P4).expect("bundled silkroad.p4 must compile");
    let hand_built = SilkRoadConfig::default().pipeline_program();
    // Structural identity: every table, register, dependency edge and
    // program-wide count must agree field-for-field.
    assert_eq!(
        format!("{hand_built:#?}"),
        format!("{lowered:#?}"),
        "lowered silkroad.p4 drifted from the hand-built reference"
    );
}

#[test]
fn lowered_silkroad_placement_report_is_identical() {
    let chip = ChipSpec::tofino_class();
    let lowered = sr_p4::compile(sr_p4::SILKROAD_P4).expect("bundled silkroad.p4 must compile");
    let hand_built = SilkRoadConfig::default().pipeline_program();
    let lowered_report = lowered.check(&chip);
    let hand_report = hand_built.check(&chip);
    assert!(lowered_report.is_placeable(), "{}", lowered_report.render());
    assert_eq!(hand_report.render(), lowered_report.render());
}

#[test]
fn bundled_charon_lowers_to_a_placeable_layout() {
    let program = sr_p4::compile(sr_p4::CHARON_P4).expect("bundled charon_lb.p4 must compile");
    let report = program.check(&ChipSpec::tofino_class());
    assert!(report.is_placeable(), "{}", report.render());
}

#[test]
fn unplaceable_p4_is_still_refused_downstream() {
    // Blow the ConnTable far past the chip's SRAM so lowering succeeds but
    // placement must fail — the compile path must not bypass srcheck.
    let bloated = sr_p4::SILKROAD_P4.replace("size = 1000000;", "size = 900000000;");
    let program = sr_p4::compile(&bloated).expect("bloated program still compiles");
    let report = program.check(&ChipSpec::tofino_class());
    assert!(!report.is_placeable(), "{}", report.render());
}
