//! Golden + mutation tests for the SRC101+ semantic diagnostics.
//!
//! Mirrors the srcheck idiom from `crates/asic/tests/srcheck.rs`: a clean
//! base program (`fixtures/base.p4`) must analyze without a single
//! diagnostic, and one mutated sibling per rule must be rejected with the
//! documented id. Each mutation's full rendered diagnostic output —
//! ids, `line:col` spans, and messages — is pinned against a `.golden`
//! file; regenerate with `SRP4_BLESS=1 cargo test -p sr-p4` after an
//! intentional message change and review the diff.

use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parse + analyze a fixture, assert `rule` fires, and pin the rendered
/// report against `<stem>.golden`.
fn check_fixture(stem: &str, rule: &str) {
    let src = read(&format!("{stem}.p4"));
    let prog = sr_p4::parse(&src).unwrap_or_else(|e| panic!("{stem}.p4 must parse: {e}"));
    let analysis = sr_p4::analyze(&prog);
    assert!(
        analysis.diags.iter().any(|d| d.rule.id() == rule),
        "{stem}.p4 must trip {rule}; got:\n{}",
        analysis.render()
    );
    let rendered = analysis.render();
    let golden_path = fixture_dir().join(format!("{stem}.golden"));
    if std::env::var_os("SRP4_BLESS").is_some() {
        std::fs::write(&golden_path, &rendered)
            .unwrap_or_else(|e| panic!("bless {}: {e}", golden_path.display()));
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {} (run with SRP4_BLESS=1 once): {e}",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "{stem}.p4 diagnostics drifted from {stem}.golden (SRP4_BLESS=1 to regenerate)"
    );
}

#[test]
fn base_fixture_is_clean() {
    let src = read("base.p4");
    let prog = sr_p4::parse(&src).expect("base.p4 must parse");
    let analysis = sr_p4::analyze(&prog);
    assert!(analysis.is_clean(), "{}", analysis.render());
    sr_p4::lower(&prog, &analysis.env).expect("base.p4 must lower");
}

#[test]
fn src101_unknown_type() {
    check_fixture("src101_unknown_type", "SRC101");
}

#[test]
fn src102_duplicate_type() {
    check_fixture("src102_duplicate_type", "SRC102");
}

#[test]
fn src103_duplicate_instance() {
    check_fixture("src103_duplicate_instance", "SRC103");
}

#[test]
fn src104_undeclared_ref() {
    check_fixture("src104_undeclared_ref", "SRC104");
}

#[test]
fn src105_width_mismatch() {
    check_fixture("src105_width_mismatch", "SRC105");
}

#[test]
fn src106_unreachable_state() {
    check_fixture("src106_unreachable_state", "SRC106");
}

#[test]
fn src107_state_cycle() {
    check_fixture("src107_state_cycle", "SRC107");
}

#[test]
fn src108_action_arity() {
    check_fixture("src108_action_arity", "SRC108");
}

#[test]
fn src109_undefined_action() {
    check_fixture("src109_undefined_action", "SRC109");
}

#[test]
fn src110_transactional_span() {
    check_fixture("src110_transactional_span", "SRC110");
}

#[test]
fn src111_missing_start() {
    check_fixture("src111_missing_start", "SRC111");
}

/// Every rule in the catalog has a mutation fixture on disk — adding a
/// rule without a fixture fails here, not in review.
#[test]
fn every_rule_has_a_fixture() {
    let dir = fixture_dir();
    for id in 101..=111 {
        let found = std::fs::read_dir(&dir)
            .expect("fixtures dir")
            .flatten()
            .any(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("src{id}_"))
            });
        assert!(found, "no mutation fixture for SRC{id}");
    }
}
