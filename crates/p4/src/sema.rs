//! Semantic analysis over the parsed AST: the SRC101+ diagnostic catalog.
//!
//! Unlike the parser (which stops at the first syntax error), this pass is
//! exhaustive: it walks the whole program and collects every diagnostic it
//! can find, each with a stable rule id and a source span. The ids extend
//! the srcheck catalog (SRC001–SRC016 verify pipeline *layouts*; SRC101+
//! verify P4 *source*):
//!
//! | id     | rule                                                        |
//! |--------|-------------------------------------------------------------|
//! | SRC101 | reference to an undeclared type                             |
//! | SRC102 | duplicate type declaration                                  |
//! | SRC103 | duplicate instance / field / state declaration              |
//! | SRC104 | reference to an undeclared instance, field or state         |
//! | SRC105 | width mismatch (or a field that cannot carry a width)       |
//! | SRC106 | unreachable parser state                                    |
//! | SRC107 | parser transition cycle                                     |
//! | SRC108 | action arity or argument-type error                         |
//! | SRC109 | table references an undefined or unlisted action            |
//! | SRC110 | placement pragma error (incl. transactional span > 1 stage) |
//! | SRC111 | program shape (missing `start` state, parser, or control)   |
//!
//! The pass also builds the resolved type environment ([`Env`]) the
//! lowering pass reuses, so widths are computed exactly once and the two
//! passes cannot disagree.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::lex::Span;

/// A semantic rule with a stable id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// SRC101 — reference to an undeclared type.
    UnknownType,
    /// SRC102 — duplicate type declaration.
    DuplicateType,
    /// SRC103 — duplicate instance/field/state declaration.
    DuplicateInstance,
    /// SRC104 — reference to an undeclared instance, field or state.
    UndeclaredRef,
    /// SRC105 — width mismatch.
    WidthMismatch,
    /// SRC106 — unreachable parser state.
    UnreachableState,
    /// SRC107 — parser transition cycle.
    StateCycle,
    /// SRC108 — action arity/argument-type error.
    ActionArity,
    /// SRC109 — table references an undefined or unlisted action.
    UndefinedAction,
    /// SRC110 — placement pragma error.
    PragmaError,
    /// SRC111 — program shape error.
    ProgramShape,
}

impl Rule {
    /// The stable diagnostic id.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::UnknownType => "SRC101",
            Rule::DuplicateType => "SRC102",
            Rule::DuplicateInstance => "SRC103",
            Rule::UndeclaredRef => "SRC104",
            Rule::WidthMismatch => "SRC105",
            Rule::UnreachableState => "SRC106",
            Rule::StateCycle => "SRC107",
            Rule::ActionArity => "SRC108",
            Rule::UndefinedAction => "SRC109",
            Rule::PragmaError => "SRC110",
            Rule::ProgramShape => "SRC111",
        }
    }
}

/// One semantic diagnostic.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Which rule fired.
    pub rule: Rule,
    /// Where.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.rule.id(), self.span, self.message)
    }
}

/// A resolved type: header (all-bit fields) or struct (bit or header fields).
#[derive(Clone, Debug)]
pub enum TypeDef {
    /// A header: ordered `(field, width)` pairs.
    Header {
        /// Fields in declaration order.
        fields: Vec<(String, u32)>,
    },
    /// A struct: ordered `(field, type)` pairs.
    Struct {
        /// Fields in declaration order.
        fields: Vec<(String, FieldTy)>,
    },
}

/// The resolved type of a struct field.
#[derive(Clone, Debug)]
pub enum FieldTy {
    /// `bit<N>`.
    Bits(u32),
    /// A header instance, by header type name.
    Header(String),
}

/// Instance scope: instance name → struct type name (from control/parser
/// params).
pub type Scope = HashMap<String, String>;

/// The resolved type environment, shared with the lowering pass.
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Declared types by name.
    pub types: HashMap<String, TypeDef>,
}

impl Env {
    /// Build the instance scope for a parameter list (named types only;
    /// `packet_in` and friends resolve to nothing and simply never match).
    pub fn scope_of(params: &[Param]) -> Scope {
        let mut scope = Scope::new();
        for p in params {
            if let TypeRef::Named(ty) = &p.ty {
                scope.insert(p.name.name.clone(), ty.name.clone());
            }
        }
        scope
    }

    fn struct_field(&self, ty: &str, field: &str) -> Option<&FieldTy> {
        match self.types.get(ty) {
            Some(TypeDef::Struct { fields }) => {
                fields.iter().find(|(n, _)| n == field).map(|(_, t)| t)
            }
            _ => None,
        }
    }

    fn header_field_width(&self, hdr: &str, field: &str) -> Option<u32> {
        match self.types.get(hdr) {
            Some(TypeDef::Header { fields }) => {
                fields.iter().find(|(n, _)| n == field).map(|(_, w)| *w)
            }
            _ => None,
        }
    }

    /// Total width of a struct whose fields are all `bit<N>` (the metadata
    /// struct); `None` if the type is unknown or carries header fields.
    pub fn struct_total_bits(&self, ty: &str) -> Option<u64> {
        match self.types.get(ty)? {
            TypeDef::Struct { fields } => {
                let mut total = 0u64;
                for (_, t) in fields {
                    match t {
                        FieldTy::Bits(w) => total += u64::from(*w),
                        FieldTy::Header(_) => return None,
                    }
                }
                Some(total)
            }
            TypeDef::Header { .. } => None,
        }
    }

    /// Resolve a dotted path to a bit width against an instance scope.
    ///
    /// Accepted shapes: `inst.field` (bit field of a struct) and
    /// `inst.hfield.field` (bit field of a header nested in a struct).
    pub fn path_width(&self, scope: &Scope, path: &FieldPath) -> Result<u32, String> {
        let dotted = path.dotted();
        let mut parts = path.parts.iter();
        let root = parts.next().ok_or_else(|| "empty path".to_string())?;
        let ty = scope
            .get(&root.name)
            .ok_or_else(|| format!("undeclared instance '{}'", root.name))?;
        let field = parts
            .next()
            .ok_or_else(|| format!("'{dotted}' names an instance, not a field"))?;
        match self.struct_field(ty, &field.name) {
            Some(FieldTy::Bits(w)) => {
                if parts.next().is_some() {
                    Err(format!("'{dotted}' indexes into a bit<N> field"))
                } else {
                    Ok(*w)
                }
            }
            Some(FieldTy::Header(hty)) => {
                let hty = hty.clone();
                let sub = parts
                    .next()
                    .ok_or_else(|| format!("'{dotted}' names a whole header, not a field"))?;
                if parts.next().is_some() {
                    return Err(format!("'{dotted}' is nested too deeply"));
                }
                self.header_field_width(&hty, &sub.name).ok_or_else(|| {
                    format!("header '{hty}' has no field '{}' (in '{dotted}')", sub.name)
                })
            }
            None => Err(format!(
                "'{}' has no field '{}' (in '{dotted}')",
                ty, field.name
            )),
        }
    }

    /// Resolve an extract target (`hdr.eth`) to its header type name.
    pub fn header_of_path(&self, scope: &Scope, path: &FieldPath) -> Result<String, String> {
        let dotted = path.dotted();
        if path.parts.len() != 2 {
            return Err(format!(
                "extract target '{dotted}' must be 'instance.field'"
            ));
        }
        let ty = scope
            .get(&path.parts[0].name)
            .ok_or_else(|| format!("undeclared instance '{}'", path.parts[0].name))?;
        match self.struct_field(ty, &path.parts[1].name) {
            Some(FieldTy::Header(h)) => Ok(h.clone()),
            Some(FieldTy::Bits(_)) => Err(format!("'{dotted}' is a bit field, not a header")),
            None => Err(format!(
                "'{}' has no field '{}' (in '{dotted}')",
                ty, path.parts[1].name
            )),
        }
    }
}

/// The result of semantic analysis: diagnostics plus the environment the
/// lowering pass consumes. Lowering must only run when `diags` is empty.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// All diagnostics, ordered by source position.
    pub diags: Vec<Diag>,
    /// The resolved type environment.
    pub env: Env,
}

impl Analysis {
    /// True when the program is semantically clean.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Render diagnostics one per line (`SRC104 12:9: message`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

/// Analyze a parsed program.
pub fn analyze(prog: &Program) -> Analysis {
    let mut a = Analyzer {
        env: Env::default(),
        diags: Vec::new(),
    };
    a.collect_types(prog);
    a.check_shape(prog);
    for p in &prog.parsers {
        a.check_parser(p);
    }
    for c in &prog.controls {
        a.check_control(c);
    }
    let mut diags = a.diags;
    diags.sort_by_key(|d| (d.span.line, d.span.col, d.rule));
    Analysis { diags, env: a.env }
}

struct Analyzer {
    env: Env,
    diags: Vec<Diag>,
}

impl Analyzer {
    fn diag(&mut self, rule: Rule, span: Span, message: impl Into<String>) {
        self.diags.push(Diag {
            rule,
            span,
            message: message.into(),
        });
    }

    fn collect_types(&mut self, prog: &Program) {
        // First sweep: register names so forward references resolve.
        for h in &prog.headers {
            if self
                .env
                .types
                .insert(h.name.name.clone(), TypeDef::Header { fields: Vec::new() })
                .is_some()
            {
                self.diag(
                    Rule::DuplicateType,
                    h.name.span,
                    format!("type '{}' is declared more than once", h.name),
                );
            }
        }
        for s in &prog.structs {
            if self
                .env
                .types
                .insert(s.name.name.clone(), TypeDef::Struct { fields: Vec::new() })
                .is_some()
            {
                self.diag(
                    Rule::DuplicateType,
                    s.name.span,
                    format!("type '{}' is declared more than once", s.name),
                );
            }
        }
        // Second sweep: resolve field lists.
        for h in &prog.headers {
            let mut fields = Vec::new();
            let mut seen = HashSet::new();
            for f in &h.fields {
                if !seen.insert(f.name.name.clone()) {
                    self.diag(
                        Rule::DuplicateInstance,
                        f.name.span,
                        format!(
                            "field '{}' is declared more than once in '{}'",
                            f.name, h.name
                        ),
                    );
                    continue;
                }
                match &f.ty {
                    TypeRef::Bits { width, .. } => fields.push((f.name.name.clone(), *width)),
                    TypeRef::Named(ty) => self.diag(
                        Rule::WidthMismatch,
                        ty.span,
                        format!(
                            "header field '{}.{}' must have a concrete bit<N> width, found '{}'",
                            h.name, f.name, ty.name
                        ),
                    ),
                }
            }
            self.env
                .types
                .insert(h.name.name.clone(), TypeDef::Header { fields });
        }
        for s in &prog.structs {
            let mut fields = Vec::new();
            let mut seen = HashSet::new();
            for f in &s.fields {
                if !seen.insert(f.name.name.clone()) {
                    self.diag(
                        Rule::DuplicateInstance,
                        f.name.span,
                        format!(
                            "field '{}' is declared more than once in '{}'",
                            f.name, s.name
                        ),
                    );
                    continue;
                }
                match &f.ty {
                    TypeRef::Bits { width, .. } => {
                        fields.push((f.name.name.clone(), FieldTy::Bits(*width)))
                    }
                    TypeRef::Named(ty) => match self.env.types.get(&ty.name) {
                        Some(TypeDef::Header { .. }) => {
                            fields.push((f.name.name.clone(), FieldTy::Header(ty.name.clone())))
                        }
                        Some(TypeDef::Struct { .. }) => self.diag(
                            Rule::WidthMismatch,
                            ty.span,
                            format!(
                                "struct field '{}.{}' nests struct '{}'; only headers and bit<N> \
                                 fields are supported",
                                s.name, f.name, ty.name
                            ),
                        ),
                        None => self.diag(
                            Rule::UnknownType,
                            ty.span,
                            format!("unknown type '{}' in struct '{}'", ty.name, s.name),
                        ),
                    },
                }
            }
            self.env
                .types
                .insert(s.name.name.clone(), TypeDef::Struct { fields });
        }
    }

    fn check_shape(&mut self, prog: &Program) {
        let origin = Span { line: 1, col: 1 };
        if prog.parsers.is_empty() {
            self.diag(Rule::ProgramShape, origin, "program declares no parser");
        }
        if prog.controls.is_empty() {
            self.diag(Rule::ProgramShape, origin, "program declares no control");
        }
        if let Some(extra) = prog.parsers.get(1) {
            self.diag(
                Rule::ProgramShape,
                extra.name.span,
                format!(
                    "program declares more than one parser ('{}' is extra)",
                    extra.name
                ),
            );
        }
        if let Some(extra) = prog.controls.get(1) {
            self.diag(
                Rule::ProgramShape,
                extra.name.span,
                format!(
                    "program declares more than one control ('{}' is extra)",
                    extra.name
                ),
            );
        }
    }

    /// Param types must resolve (the packet stream type is builtin).
    fn check_params(&mut self, params: &[Param]) {
        for p in params {
            if let TypeRef::Named(ty) = &p.ty {
                if ty.name != "packet_in"
                    && ty.name != "packet_out"
                    && !self.env.types.contains_key(&ty.name)
                {
                    self.diag(
                        Rule::UnknownType,
                        ty.span,
                        format!("unknown type '{}' in parameter '{}'", ty.name, p.name),
                    );
                }
            }
        }
    }

    fn check_parser(&mut self, p: &ParserDecl) {
        self.check_params(&p.params);
        let scope = Env::scope_of(&p.params);

        let mut states: HashMap<&str, &StateDecl> = HashMap::new();
        for s in &p.states {
            if states.insert(s.name.name.as_str(), s).is_some() {
                self.diag(
                    Rule::DuplicateInstance,
                    s.name.span,
                    format!("state '{}' is declared more than once", s.name),
                );
            }
        }
        if !states.contains_key("start") {
            self.diag(
                Rule::ProgramShape,
                p.name.span,
                format!("parser '{}' has no 'start' state", p.name),
            );
        }

        let is_terminal = |name: &str| name == "accept" || name == "reject";
        for s in &p.states {
            for ex in &s.extracts {
                if let Err(msg) = self.env.header_of_path(&scope, ex) {
                    let rule = if msg.contains("bit field") {
                        Rule::WidthMismatch
                    } else {
                        Rule::UndeclaredRef
                    };
                    self.diag(rule, ex.span(), msg);
                }
            }
            let check_target = |a: &mut Self, t: &Ident| {
                if !is_terminal(&t.name) && !states.contains_key(t.name.as_str()) {
                    a.diag(
                        Rule::UndeclaredRef,
                        t.span,
                        format!("transition to undeclared state '{}'", t.name),
                    );
                }
            };
            match &s.transition {
                Transition::Direct(t) => check_target(self, t),
                Transition::Select { key, arms, default } => {
                    let key_width = match key {
                        Expr::Path(path) => match self.env.path_width(&scope, path) {
                            Ok(w) => Some(w),
                            Err(msg) => {
                                self.diag(Rule::UndeclaredRef, path.span(), msg);
                                None
                            }
                        },
                        Expr::Lit(l) => l.width,
                    };
                    for arm in arms {
                        if let (Some(kw), Some(aw)) = (key_width, arm.value.width) {
                            if kw != aw {
                                self.diag(
                                    Rule::WidthMismatch,
                                    arm.value.span,
                                    format!(
                                        "select arm literal is {aw} bits wide but the key is \
                                         {kw} bits"
                                    ),
                                );
                            }
                        }
                        if let Some(kw) = key_width {
                            if !fits(arm.value.value, kw) {
                                self.diag(
                                    Rule::WidthMismatch,
                                    arm.value.span,
                                    format!(
                                        "select arm value {} does not fit the {kw}-bit key",
                                        arm.value.value
                                    ),
                                );
                            }
                        }
                        check_target(self, &arm.target);
                    }
                    if let Some(d) = default {
                        check_target(self, d);
                    }
                }
            }
        }

        // Reachability from `start`, and cycle detection over the state
        // graph (terminal states `accept`/`reject` end every path).
        let targets = |s: &StateDecl| -> Vec<String> {
            match &s.transition {
                Transition::Direct(t) => vec![t.name.clone()],
                Transition::Select { arms, default, .. } => {
                    let mut v: Vec<String> = arms.iter().map(|a| a.target.name.clone()).collect();
                    if let Some(d) = default {
                        v.push(d.name.clone());
                    }
                    v
                }
            }
        };
        let mut reachable: HashSet<String> = HashSet::new();
        let mut stack = vec!["start".to_string()];
        while let Some(name) = stack.pop() {
            if is_terminal(&name) || !reachable.insert(name.clone()) {
                continue;
            }
            if let Some(s) = states.get(name.as_str()) {
                stack.extend(targets(s));
            }
        }
        for s in &p.states {
            if !reachable.contains(&s.name.name) {
                self.diag(
                    Rule::UnreachableState,
                    s.name.span,
                    format!("state '{}' is unreachable from 'start'", s.name),
                );
            }
        }
        // Cycle check: iterative DFS with colors, reported at the state
        // that closes the cycle.
        let mut color: HashMap<String, u8> = HashMap::new(); // 1 = open, 2 = done
        for s in &p.states {
            if color.get(&s.name.name).copied().unwrap_or(0) != 0 {
                continue;
            }
            // (state, next-target-index) stack.
            let mut dfs: Vec<(String, usize)> = vec![(s.name.name.clone(), 0)];
            color.insert(s.name.name.clone(), 1);
            while let Some((name, idx)) = dfs.pop() {
                let Some(st) = states.get(name.as_str()) else {
                    color.insert(name, 2);
                    continue;
                };
                let ts = targets(st);
                if idx >= ts.len() {
                    color.insert(name, 2);
                    continue;
                }
                dfs.push((name.clone(), idx + 1));
                let next = &ts[idx];
                if is_terminal(next) {
                    continue;
                }
                match color.get(next.as_str()).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next.clone(), 1);
                        dfs.push((next.clone(), 0));
                    }
                    1 => {
                        let span = states
                            .get(next.as_str())
                            .map(|s| s.name.span)
                            .unwrap_or(st.name.span);
                        self.diag(
                            Rule::StateCycle,
                            span,
                            format!("parser states cycle: '{name}' transitions back to '{next}'"),
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    fn check_control(&mut self, c: &ControlDecl) {
        self.check_params(&c.params);
        let scope = Env::scope_of(&c.params);

        // One namespace for params, actions, tables and registers.
        let mut instances: HashMap<String, &'static str> = HashMap::new();
        for p in &c.params {
            instances.insert(p.name.name.clone(), "parameter");
        }
        let declared: Vec<(&Ident, &'static str)> = c
            .actions
            .iter()
            .map(|a| (&a.name, "action"))
            .chain(c.tables.iter().map(|t| (&t.name, "table")))
            .chain(c.registers.iter().map(|r| (&r.name, "register")))
            .collect();
        for (name, kind) in declared {
            if let Some(prev) = instances.insert(name.name.clone(), kind) {
                self.diag(
                    Rule::DuplicateInstance,
                    name.span,
                    format!("{kind} '{name}' collides with a {prev} of the same name"),
                );
            }
        }

        let actions: HashMap<&str, &ActionDecl> = c
            .actions
            .iter()
            .map(|a| (a.name.name.as_str(), a))
            .collect();
        let tables: HashSet<&str> = c.tables.iter().map(|t| t.name.name.as_str()).collect();
        let registers: HashMap<&str, &RegisterDef> = c
            .registers
            .iter()
            .map(|r| (r.name.name.as_str(), r))
            .collect();

        for a in &c.actions {
            self.check_action(a, &scope);
        }
        for t in &c.tables {
            self.check_table(t, &scope, &actions);
        }
        for r in &c.registers {
            self.check_register(r);
        }
        self.check_apply(&c.apply, &scope, &tables, &registers);
    }

    fn check_action(&mut self, a: &ActionDecl, scope: &Scope) {
        let mut params: HashMap<&str, u32> = HashMap::new();
        for p in &a.params {
            match &p.ty {
                TypeRef::Bits { width, .. } => {
                    if params.insert(p.name.name.as_str(), *width).is_some() {
                        self.diag(
                            Rule::DuplicateInstance,
                            p.name.span,
                            format!(
                                "parameter '{}' is declared more than once in action '{}'",
                                p.name, a.name
                            ),
                        );
                    }
                }
                TypeRef::Named(ty) => self.diag(
                    Rule::WidthMismatch,
                    ty.span,
                    format!(
                        "action parameter '{}.{}' must have type bit<N>, found '{}'",
                        a.name, p.name, ty.name
                    ),
                ),
            }
        }
        for stmt in &a.body {
            let lhs_width = match self.env.path_width(scope, &stmt.lhs) {
                Ok(w) => Some(w),
                Err(msg) => {
                    self.diag(Rule::UndeclaredRef, stmt.lhs.span(), msg);
                    None
                }
            };
            let rhs_width = self.expr_width(&stmt.rhs, scope, &params);
            if let (Some(lw), Some(rw)) = (lhs_width, rhs_width) {
                if lw != rw {
                    self.diag(
                        Rule::WidthMismatch,
                        stmt.rhs.span(),
                        format!(
                            "assignment to '{}' mixes widths: destination is {lw} bits, source \
                             is {rw} bits",
                            stmt.lhs.dotted()
                        ),
                    );
                }
            }
            if let (Some(lw), Expr::Lit(l)) = (lhs_width, &stmt.rhs) {
                if l.width.is_none() && !fits(l.value, lw) {
                    self.diag(
                        Rule::WidthMismatch,
                        l.span,
                        format!(
                            "literal {} does not fit the {lw}-bit destination '{}'",
                            l.value,
                            stmt.lhs.dotted()
                        ),
                    );
                }
            }
        }
    }

    /// Width of an expression, if determinable. Bare literals are
    /// context-typed and return `None`; unresolvable paths emit SRC104.
    fn expr_width(&mut self, e: &Expr, scope: &Scope, params: &HashMap<&str, u32>) -> Option<u32> {
        match e {
            Expr::Lit(l) => l.width,
            Expr::Path(p) => {
                if p.parts.len() == 1 {
                    if let Some(w) = params.get(p.parts[0].name.as_str()) {
                        return Some(*w);
                    }
                }
                match self.env.path_width(scope, p) {
                    Ok(w) => Some(w),
                    Err(msg) => {
                        self.diag(Rule::UndeclaredRef, p.span(), msg);
                        None
                    }
                }
            }
        }
    }

    fn check_table(&mut self, t: &TableDef, scope: &Scope, actions: &HashMap<&str, &ActionDecl>) {
        self.check_pragmas(&t.pragmas, &["stage", "digest", "selector_hash"], scope);
        for k in &t.key {
            if let Err(msg) = self.env.path_width(scope, &k.field) {
                self.diag(Rule::UndeclaredRef, k.field.span(), msg);
            }
            match k.match_kind.name.as_str() {
                "exact" | "ternary" | "lpm" => {}
                other => self.diag(
                    Rule::UndeclaredRef,
                    k.match_kind.span,
                    format!("unknown match kind '{other}' (expected exact, ternary or lpm)"),
                ),
            }
        }
        let mut listed: HashSet<&str> = HashSet::new();
        for a in &t.actions {
            if !actions.contains_key(a.name.as_str()) {
                self.diag(
                    Rule::UndefinedAction,
                    a.span,
                    format!("table '{}' lists undefined action '{}'", t.name, a),
                );
            }
            if !listed.insert(a.name.as_str()) {
                self.diag(
                    Rule::DuplicateInstance,
                    a.span,
                    format!("table '{}' lists action '{}' more than once", t.name, a),
                );
            }
        }
        if let Some(call) = &t.default_action {
            match actions.get(call.name.name.as_str()) {
                None => self.diag(
                    Rule::UndefinedAction,
                    call.name.span,
                    format!(
                        "table '{}' defaults to undefined action '{}'",
                        t.name, call.name
                    ),
                ),
                Some(decl) => {
                    if !listed.contains(call.name.name.as_str()) {
                        self.diag(
                            Rule::UndefinedAction,
                            call.name.span,
                            format!(
                                "default action '{}' is not in table '{}''s actions list",
                                call.name, t.name
                            ),
                        );
                    }
                    if call.args.len() != decl.params.len() {
                        self.diag(
                            Rule::ActionArity,
                            call.name.span,
                            format!(
                                "action '{}' takes {} argument{} but the default call passes {}",
                                call.name,
                                decl.params.len(),
                                if decl.params.len() == 1 { "" } else { "s" },
                                call.args.len()
                            ),
                        );
                    }
                    for (arg, param) in call.args.iter().zip(&decl.params) {
                        let pw = match &param.ty {
                            TypeRef::Bits { width, .. } => *width,
                            TypeRef::Named(_) => continue, // already diagnosed
                        };
                        match arg {
                            Expr::Lit(l) => {
                                if let Some(aw) = l.width {
                                    if aw != pw {
                                        self.diag(
                                            Rule::ActionArity,
                                            l.span,
                                            format!(
                                                "argument for '{}' is {aw} bits wide but the \
                                                 parameter is {pw} bits",
                                                param.name
                                            ),
                                        );
                                    }
                                } else if !fits(l.value, pw) {
                                    self.diag(
                                        Rule::ActionArity,
                                        l.span,
                                        format!(
                                            "argument {} does not fit the {pw}-bit parameter \
                                             '{}'",
                                            l.value, param.name
                                        ),
                                    );
                                }
                            }
                            Expr::Path(p) => self.diag(
                                Rule::ActionArity,
                                p.span(),
                                format!(
                                    "default-action arguments must be literals, found '{}'",
                                    p.dotted()
                                ),
                            ),
                        }
                    }
                }
            }
        }
    }

    fn check_register(&mut self, r: &RegisterDef) {
        self.check_pragmas(
            &r.pragmas,
            &["stage", "transactional", "hash_ways"],
            &Scope::new(),
        );
        if r.cells == 0 {
            self.diag(
                Rule::WidthMismatch,
                r.width_span,
                format!("register '{}' has zero cells", r.name),
            );
        }
        let transactional = r.pragmas.iter().any(|p| p.name.name == "transactional");
        if transactional {
            if let Some((_, span, stages)) = stage_pragma(&r.pragmas) {
                if stages > 1 {
                    self.diag(
                        Rule::PragmaError,
                        span,
                        format!(
                            "transactional register '{}' spans {stages} stages; read-modify-write \
                             atomicity holds within a single stage only",
                            r.name
                        ),
                    );
                }
            }
        }
    }

    fn check_pragmas(&mut self, pragmas: &[Pragma], known: &[&str], scope: &Scope) {
        for p in pragmas {
            let name = p.name.name.as_str();
            if !known.contains(&name) {
                self.diag(
                    Rule::PragmaError,
                    p.name.span,
                    format!(
                        "unknown pragma '{name}' (expected one of: {})",
                        known.join(", ")
                    ),
                );
                continue;
            }
            let ints = p
                .args
                .iter()
                .filter(|a| matches!(a, PragmaArg::Int(..)))
                .count();
            match name {
                "stage" if ints != p.args.len() || !(1..=2).contains(&p.args.len()) => {
                    self.diag(
                        Rule::PragmaError,
                        p.name.span,
                        "pragma 'stage' takes one or two integer arguments: \
                         first-stage [span]",
                    );
                }
                "transactional" if !p.args.is_empty() => {
                    self.diag(
                        Rule::PragmaError,
                        p.name.span,
                        "pragma 'transactional' takes no arguments",
                    );
                }
                "hash_ways" | "selector_hash" => {
                    let ok = p.args.len() == 1
                        && matches!(p.args.first(), Some(PragmaArg::Int(v, _)) if *v >= 1);
                    if !ok {
                        self.diag(
                            Rule::PragmaError,
                            p.name.span,
                            format!("pragma '{name}' takes one positive integer argument"),
                        );
                    }
                }
                "digest" => match p.args.first() {
                    Some(PragmaArg::Path(path)) if p.args.len() == 1 => {
                        if let Err(msg) = self.env.path_width(scope, path) {
                            self.diag(Rule::UndeclaredRef, path.span(), msg);
                        }
                    }
                    _ => self.diag(
                        Rule::PragmaError,
                        p.name.span,
                        "pragma 'digest' takes one field-path argument",
                    ),
                },
                _ => {}
            }
        }
    }

    fn check_apply(
        &mut self,
        stmts: &[ApplyStmt],
        scope: &Scope,
        tables: &HashSet<&str>,
        registers: &HashMap<&str, &RegisterDef>,
    ) {
        for stmt in stmts {
            match stmt {
                ApplyStmt::Apply { target } => {
                    if !tables.contains(target.name.as_str()) {
                        self.diag(
                            Rule::UndeclaredRef,
                            target.span,
                            format!("'{}' is not a declared table", target),
                        );
                    }
                }
                ApplyStmt::RegisterOp { dst, reg, index } => {
                    let cell_width = match registers.get(reg.name.as_str()) {
                        Some(r) => Some(r.cell_width),
                        None => {
                            self.diag(
                                Rule::UndeclaredRef,
                                reg.span,
                                format!("'{}' is not a declared register", reg),
                            );
                            None
                        }
                    };
                    match self.env.path_width(scope, dst) {
                        Ok(w) => {
                            if let Some(cw) = cell_width {
                                if w != cw {
                                    self.diag(
                                        Rule::WidthMismatch,
                                        dst.span(),
                                        format!(
                                            "register '{}' cells are {cw} bits but '{}' is {w} \
                                             bits",
                                            reg,
                                            dst.dotted()
                                        ),
                                    );
                                }
                            }
                        }
                        Err(msg) => self.diag(Rule::UndeclaredRef, dst.span(), msg),
                    }
                    if let Expr::Path(p) = index {
                        if let Err(msg) = self.env.path_width(scope, p) {
                            self.diag(Rule::UndeclaredRef, p.span(), msg);
                        }
                    }
                }
                ApplyStmt::If { cond, then, els } => {
                    match cond {
                        Cond::ApplyResult { table, .. } => {
                            if !tables.contains(table.name.as_str()) {
                                self.diag(
                                    Rule::UndeclaredRef,
                                    table.span,
                                    format!("'{}' is not a declared table", table),
                                );
                            }
                        }
                        Cond::Compare { lhs, rhs } => {
                            let none = HashMap::new();
                            let lw = self.expr_width(lhs, scope, &none);
                            let rw = self.expr_width(rhs, scope, &none);
                            if let (Some(lw), Some(rw)) = (lw, rw) {
                                if lw != rw {
                                    self.diag(
                                        Rule::WidthMismatch,
                                        rhs.span(),
                                        format!("comparison mixes widths: {lw} bits vs {rw} bits"),
                                    );
                                }
                            }
                        }
                    }
                    self.check_apply(then, scope, tables, registers);
                    self.check_apply(els, scope, tables, registers);
                }
            }
        }
    }
}

/// The `@pragma stage F [S]` placement, if present: (first, span-of-name,
/// stage count). Malformed stage pragmas are diagnosed elsewhere and
/// ignored here.
pub fn stage_pragma(pragmas: &[Pragma]) -> Option<(u32, Span, u32)> {
    for p in pragmas {
        if p.name.name != "stage" {
            continue;
        }
        let mut ints = p.args.iter().filter_map(|a| match a {
            PragmaArg::Int(v, _) => Some(*v),
            PragmaArg::Path(_) => None,
        });
        let first = u32::try_from(ints.next()?).ok()?;
        let span_count = ints
            .next()
            .map(|v| u32::try_from(v).ok())
            .unwrap_or(Some(1))?;
        return Some((first, p.name.span, span_count.max(1)));
    }
    None
}

/// Does `value` fit in `width` bits?
fn fits(value: u128, width: u32) -> bool {
    width >= 128 || value < (1u128 << width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn ids(src: &str) -> Vec<&'static str> {
        analyze(&parse(src).unwrap())
            .diags
            .iter()
            .map(|d| d.rule.id())
            .collect()
    }

    const CLEAN: &str = r#"
header eth_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
struct headers_t { eth_h eth; }
struct meta_t { bit<16> digest; bit<1> transit; }

parser p(packet_in pkt, out headers_t hdr, inout meta_t meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            16w0x0800 : done;
            default : accept;
        };
    }
    state done { transition accept; }
}

control c(inout headers_t hdr, inout meta_t meta) {
    action setd(bit<16> d) { meta.digest = d; }
    action nop() { meta.transit = 1w0; }
    @pragma stage 0 2
    @pragma digest meta.digest
    table t {
        key = { hdr.eth.dst : exact; }
        actions = { setd; nop; }
        size = 1024;
        default_action = nop();
    }
    @pragma stage 2
    @pragma transactional
    register<bit<1>>(2048) r;
    apply {
        if (t.apply().miss) {
            meta.transit = r.execute(hdr.eth.dst);
        }
    }
}
"#;

    #[test]
    fn clean_program_has_no_diags() {
        let a = analyze(&parse(CLEAN).unwrap());
        assert!(a.is_clean(), "{}", a.render());
    }

    #[test]
    fn src101_unknown_type() {
        let src = CLEAN.replace("eth_h eth;", "eth_h eth; vlan_h vlan;");
        assert!(ids(&src).contains(&"SRC101"));
    }

    #[test]
    fn src102_duplicate_type() {
        let src = format!("{CLEAN}\nheader eth_h {{ bit<8> x; }}\n");
        assert!(ids(&src).contains(&"SRC102"));
    }

    #[test]
    fn src103_duplicate_instance() {
        let src = CLEAN.replace(
            "register<bit<1>>(2048) r;",
            "register<bit<1>>(2048) r;\n    register<bit<1>>(64) t;",
        );
        assert!(ids(&src).contains(&"SRC103"));
    }

    #[test]
    fn src104_undeclared_reference() {
        let src = CLEAN.replace("hdr.eth.dst : exact;", "hdr.eth.vid : exact;");
        assert!(ids(&src).contains(&"SRC104"));
    }

    #[test]
    fn src105_width_mismatch() {
        let src = CLEAN.replace("meta.transit = 1w0;", "meta.transit = 16w0;");
        assert!(ids(&src).contains(&"SRC105"));
    }

    #[test]
    fn src106_unreachable_state() {
        let src = CLEAN.replace(
            "state done { transition accept; }",
            "state done { transition accept; }\n    state orphan { transition accept; }",
        );
        assert!(ids(&src).contains(&"SRC106"));
    }

    #[test]
    fn src107_state_cycle() {
        let src = CLEAN.replace(
            "state done { transition accept; }",
            "state done { transition start; }",
        );
        assert!(ids(&src).contains(&"SRC107"));
    }

    #[test]
    fn src108_arity_mismatch() {
        let src = CLEAN.replace("default_action = nop();", "default_action = setd();");
        assert!(ids(&src).contains(&"SRC108"));
    }

    #[test]
    fn src109_undefined_action() {
        let src = CLEAN.replace("actions = { setd; nop; }", "actions = { setd; nop; drop; }");
        assert!(ids(&src).contains(&"SRC109"));
    }

    #[test]
    fn src110_transactional_multi_stage() {
        let src = CLEAN.replace("@pragma stage 2\n", "@pragma stage 2 3\n");
        assert!(ids(&src).contains(&"SRC110"));
    }

    #[test]
    fn src111_missing_start_state() {
        let src = CLEAN.replace("state start {", "state begin {");
        let got = ids(&src);
        assert!(got.contains(&"SRC111"), "{got:?}");
    }

    #[test]
    fn diags_are_source_ordered_and_rendered_stably() {
        let src = CLEAN
            .replace("meta.transit = 1w0;", "meta.transit = 16w0;")
            .replace("actions = { setd; nop; }", "actions = { setd; nop; drop; }");
        let a = analyze(&parse(&src).unwrap());
        let rendered = a.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].starts_with("SRC105 "), "{lines:?}");
        assert!(lines[1].starts_with("SRC109 "), "{lines:?}");
    }
}
