//! `sr-p4` — a P4_16 front-end for the ASIC model.
//!
//! The crate is a static-analysis pipeline over the P4_16 subset the
//! SilkRoad artifact needs (DESIGN.md §14):
//!
//! 1. [`lex`]/[`parse`] — a zero-dependency lexer and recursive-descent
//!    parser producing a spanned AST ([`ast`]). Syntax errors are fatal
//!    and carry `line:col` locations.
//! 2. [`sema::analyze`] — exhaustive semantic analysis emitting the
//!    SRC101+ diagnostic catalog (undeclared/duplicate types and
//!    instances, width mismatches, unreachable/cyclic parser states,
//!    action arity errors, tables referencing undefined actions,
//!    transactional registers spanning stages, program-shape errors).
//! 3. [`lower::lower`] — lowering a clean program to
//!    [`sr_asic::PipelineProgram`], so the existing srcheck catalog
//!    (SRC001–SRC016) verifies placement and budgets against real P4
//!    source instead of a hand-built fixture.
//!
//! [`compile`] chains all three. The two bundled reference programs are
//! embedded as [`SILKROAD_P4`] (whose lowering is gated to be
//! resource-for-resource identical to the hand-built
//! `PipelineProgram::silkroad` reference) and [`CHARON_P4`] (a
//! Charon-style load-aware balancer that must lower to a placeable
//! layout).

#![forbid(unsafe_code)]

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod sema;

pub use lex::{LexError, Span};
pub use lower::{lower, LowerError};
pub use parse::{parse, ParseError};
pub use sema::{analyze, Analysis, Diag, Rule};

/// The bundled SilkRoad P4 program (`p4/silkroad.p4`).
pub const SILKROAD_P4: &str = include_str!("../../../p4/silkroad.p4");

/// The bundled Charon-style load-aware balancer (`p4/charon_lb.p4`).
pub const CHARON_P4: &str = include_str!("../../../p4/charon_lb.p4");

/// Why a compilation failed.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// A fatal syntax (or lexical) error.
    Parse(ParseError),
    /// One or more semantic diagnostics (SRC101+).
    Sema(Vec<Diag>),
    /// An internal lowering failure (unreachable after clean sema).
    Lower(LowerError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(diags) => {
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

/// Compile P4 source to a [`sr_asic::PipelineProgram`]: parse, analyze,
/// lower. Semantic diagnostics are collected exhaustively; lowering runs
/// only on a clean program.
pub fn compile(source: &str) -> Result<sr_asic::PipelineProgram, CompileError> {
    let prog = parse(source).map_err(CompileError::Parse)?;
    let analysis = analyze(&prog);
    if !analysis.is_clean() {
        return Err(CompileError::Sema(analysis.diags));
    }
    lower(&prog, &analysis.env).map_err(CompileError::Lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_silkroad_compiles_clean() {
        let p = compile(SILKROAD_P4).unwrap();
        assert_eq!(p.name, "silkroad");
        assert_eq!(p.tables.len(), 4);
        assert_eq!(p.registers.len(), 1);
        assert_eq!(p.deps.len(), 3);
    }

    #[test]
    fn bundled_charon_compiles_clean_and_places() {
        let p = compile(CHARON_P4).unwrap();
        assert_eq!(p.name, "charon");
        let report = sr_asic::check_program(&p, &sr_asic::ChipSpec::tofino_class());
        assert!(report.is_placeable(), "{}", report.render());
    }

    #[test]
    fn compile_surfaces_sema_diagnostics() {
        let broken = SILKROAD_P4.replace("size = 1000000;", "size = 1000000;\n        size = 2;");
        // Duplicate property is legal syntax in our subset (last wins), so
        // break semantics instead: reference a missing field.
        let broken = broken.replace("meta.digest : exact;", "meta.sequence : exact;");
        match compile(&broken) {
            Err(CompileError::Sema(diags)) => {
                assert!(diags.iter().any(|d| d.rule.id() == "SRC104"), "{diags:?}");
            }
            other => panic!("expected sema diagnostics, got {other:?}"),
        }
    }

    #[test]
    fn compile_surfaces_parse_errors() {
        match compile("header h { bit<8 x; }") {
            Err(CompileError::Parse(e)) => assert_eq!(e.span.line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
