//! Zero-dependency lexer for the P4_16 subset.
//!
//! Produces a flat [`Token`] stream with 1-based line/column [`Span`]s.
//! The lexer is deliberately small: identifiers, decimal/hex integers,
//! P4 sized literals (`16w0x0800`), the punctuation the subset grammar
//! needs, `@` (for `@pragma` lines), and nothing else. `//` and `/* */`
//! comments are skipped, as are preprocessor lines (`#include <core.p4>`)
//! — the subset has no preprocessor.

/// A source location (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`header`, `table`, `hdr`, …).
    Ident(String),
    /// Unsized integer literal (`1000000`, `0x86dd`).
    Int(u128),
    /// Sized integer literal `Nw<value>` (`16w0x0800` → width 16, value 0x800).
    SizedInt {
        /// Declared bit width.
        width: u32,
        /// Literal value.
        value: u128,
    },
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `!`
    Bang,
    /// `@`
    At,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "'{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::SizedInt { width, value } => write!(f, "literal {width}w{value}"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::EqEq => write!(f, "'=='"),
            TokenKind::NotEq => write!(f, "'!='"),
            TokenKind::Bang => write!(f, "'!'"),
            TokenKind::At => write!(f, "'@'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// A lexical error (unexpected character, malformed literal).
#[derive(Clone, Debug)]
pub struct LexError {
    /// Where the error is.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

/// Lex `source` into tokens (a trailing [`TokenKind::Eof`] is appended).
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let n = chars.len();

    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, chars: &[char]| {
        if chars.get(*i) == Some(&'\n') {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };

    while i < n {
        let c = chars[i];
        let span = Span { line, col };
        match c {
            c if c.is_whitespace() => advance(&mut i, &mut line, &mut col, &chars),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < n && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, &chars);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                advance(&mut i, &mut line, &mut col, &chars);
                advance(&mut i, &mut line, &mut col, &chars);
                loop {
                    if i >= n {
                        return Err(LexError {
                            span,
                            message: "unterminated block comment".to_string(),
                        });
                    }
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        advance(&mut i, &mut line, &mut col, &chars);
                        advance(&mut i, &mut line, &mut col, &chars);
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, &chars);
                }
            }
            // Preprocessor lines (`#include <core.p4>`) are outside the
            // subset; skip to end of line.
            '#' => {
                while i < n && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, &chars);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col, &chars);
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    span,
                });
            }
            c if c.is_ascii_digit() => {
                let (kind, used) = lex_number(&chars[i..], span)?;
                for _ in 0..used {
                    advance(&mut i, &mut line, &mut col, &chars);
                }
                tokens.push(Token { kind, span });
            }
            _ => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '<' => TokenKind::Lt,
                    '>' => TokenKind::Gt,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semi,
                    ':' => TokenKind::Colon,
                    '.' => TokenKind::Dot,
                    '@' => TokenKind::At,
                    '=' if chars.get(i + 1) == Some(&'=') => {
                        advance(&mut i, &mut line, &mut col, &chars);
                        TokenKind::EqEq
                    }
                    '=' => TokenKind::Eq,
                    '!' if chars.get(i + 1) == Some(&'=') => {
                        advance(&mut i, &mut line, &mut col, &chars);
                        TokenKind::NotEq
                    }
                    '!' => TokenKind::Bang,
                    other => {
                        return Err(LexError {
                            span,
                            message: format!("unexpected character '{other}'"),
                        })
                    }
                };
                advance(&mut i, &mut line, &mut col, &chars);
                tokens.push(Token { kind, span });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

/// Lex a number starting at `chars[0]`: `123`, `0x1f`, or the P4 sized
/// literal `16w0x0800`. Returns the token kind and how many chars it used.
fn lex_number(chars: &[char], span: Span) -> Result<(TokenKind, usize), LexError> {
    let mut i = 0usize;
    let (first, used) = lex_raw_int(chars, span)?;
    i += used;
    if chars.get(i) == Some(&'w') {
        let width = u32::try_from(first).map_err(|_| LexError {
            span,
            message: format!("literal width {first} is out of range"),
        })?;
        i += 1;
        let rest = chars.get(i..).unwrap_or(&[]);
        if !rest.first().is_some_and(|c| c.is_ascii_digit()) {
            return Err(LexError {
                span,
                message: "sized literal needs a value after 'w'".to_string(),
            });
        }
        let (value, used) = lex_raw_int(rest, span)?;
        i += used;
        return Ok((TokenKind::SizedInt { width, value }, i));
    }
    Ok((TokenKind::Int(first), i))
}

/// Lex a bare decimal or `0x` hex integer.
fn lex_raw_int(chars: &[char], span: Span) -> Result<(u128, usize), LexError> {
    let mut i = 0usize;
    let mut digits = String::new();
    let hex = chars.first() == Some(&'0') && matches!(chars.get(1), Some('x') | Some('X'));
    if hex {
        i += 2;
        while chars.get(i).is_some_and(|c| c.is_ascii_hexdigit()) {
            digits.push(chars[i]);
            i += 1;
        }
        if digits.is_empty() {
            return Err(LexError {
                span,
                message: "hex literal needs digits after 0x".to_string(),
            });
        }
    } else {
        while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
            digits.push(chars[i]);
            i += 1;
        }
    }
    let radix = if hex { 16 } else { 10 };
    match u128::from_str_radix(&digits, radix) {
        Ok(v) => Ok((v, i)),
        Err(_) => Err(LexError {
            span,
            message: format!("integer literal '{digits}' does not fit 128 bits"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_numbers_and_punctuation() {
        let got = kinds("header h { bit<48> dst; }");
        assert_eq!(
            got,
            vec![
                TokenKind::Ident("header".into()),
                TokenKind::Ident("h".into()),
                TokenKind::LBrace,
                TokenKind::Ident("bit".into()),
                TokenKind::Lt,
                TokenKind::Int(48),
                TokenKind::Gt,
                TokenKind::Ident("dst".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn sized_literals_decimal_and_hex() {
        assert_eq!(
            kinds("16w0x0800 1w0 6w63"),
            vec![
                TokenKind::SizedInt {
                    width: 16,
                    value: 0x0800
                },
                TokenKind::SizedInt { width: 1, value: 0 },
                TokenKind::SizedInt {
                    width: 6,
                    value: 63
                },
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_are_skipped() {
        let got = kinds("#include <core.p4>\n// line\n/* block\nstill */ x");
        assert_eq!(got, vec![TokenKind::Ident("x".into()), TokenKind::Eof]);
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bc").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a == b != !c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::EqEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Bang,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_errors_carry_spans() {
        let e = lex("x $").unwrap_err();
        assert_eq!(e.span, Span { line: 1, col: 3 });
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn malformed_sized_literal() {
        assert!(lex("16w").is_err());
        assert!(lex("0x").is_err());
    }
}
