//! Lowering from the semantically-clean AST to [`sr_asic::PipelineProgram`].
//!
//! The lowering rules mirror what a Tofino-class compiler's resource report
//! derives from P4 source (DESIGN.md §14.3):
//!
//! * **key_bits** — sum of the table's key-field widths.
//! * **stored_key_bits** — the `@pragma digest <field>` field's width when
//!   present (digest compression, §4.2 of the paper), else `key_bits`.
//! * **action_bits** — the widest listed action's summed parameter widths
//!   (action data is provisioned for the largest action).
//! * **action_slots** — total statement count across the table's listed
//!   actions (each assignment is one VLIW primitive).
//! * **entries** — the table's `size` property (default 1024).
//! * **first_stage / stages** — `@pragma stage F [S]` (default stage 0,
//!   span 1).
//! * registers: **alus** = 2 × `@pragma hash_ways` (a set path and a test
//!   path per way; 1 ALU when direct-indexed), **index_hash_bits** =
//!   ⌈log₂ cells⌉ × ways (0 when direct-indexed).
//! * **metadata_bits** — summed field widths of every all-bit struct bound
//!   by the control's parameters (the PHV-resident metadata).
//! * **selector_hash_bits** — summed `@pragma selector_hash N` across
//!   tables.
//! * **deps** — one edge per applied unit from its *nearest-latest
//!   producer*: walking the apply block in order, a unit depends on the
//!   latest previously-applied unit among (a) the last writer of any field
//!   it reads (table keys, register index) and (b) the tables/registers
//!   whose results gate it via enclosing `if` conditions. This yields
//!   RMT match-dependency chains without an SSA pass.
//!
//! Table and register names are interned (leaked once per distinct name,
//! process-wide) because `sr_asic` declarations use `&'static str` names.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use sr_asic::{MatchKind, PipelineProgram, RegisterDecl, TableDecl, TableDependency};

use crate::ast::*;
use crate::sema::{stage_pragma, Env};

/// An internal lowering failure. With a clean [`crate::sema::Analysis`]
/// this cannot fire; it exists so callers that skip sema get an error
/// instead of a panic.
#[derive(Clone, Debug)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

/// Intern a dynamic name into a `&'static str` (the `sr_asic` declaration
/// types are `&'static str`-named). Each distinct name leaks exactly once.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = pool.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(v) = guard.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    guard.insert(s.to_string(), leaked);
    leaked
}

/// Lower a semantically-clean program. Call only after
/// [`crate::sema::analyze`] reports no diagnostics.
pub fn lower(prog: &Program, env: &Env) -> Result<PipelineProgram, LowerError> {
    let control = prog.controls.first().ok_or_else(|| LowerError {
        message: "program declares no control".to_string(),
    })?;
    let scope = Env::scope_of(&control.params);
    let err = |message: String| LowerError { message };

    let actions: HashMap<&str, &ActionDecl> = control
        .actions
        .iter()
        .map(|a| (a.name.name.as_str(), a))
        .collect();

    let mut tables = Vec::new();
    let mut selector_hash_bits = 0u32;
    for t in &control.tables {
        let mut key_bits = 0u32;
        let mut kind = MatchKind::Exact;
        for k in &t.key {
            key_bits += env
                .path_width(&scope, &k.field)
                .map_err(|m| err(format!("table '{}': {m}", t.name)))?;
            if k.match_kind.name != "exact" {
                kind = MatchKind::Ternary;
            }
        }
        let stored_key_bits = match digest_pragma(&t.pragmas) {
            Some(path) => env
                .path_width(&scope, path)
                .map_err(|m| err(format!("table '{}' digest pragma: {m}", t.name)))?,
            None => key_bits,
        };
        let mut action_bits = 0u32;
        let mut action_slots = 0u32;
        for name in &t.actions {
            let a = actions
                .get(name.name.as_str())
                .ok_or_else(|| err(format!("table '{}' lists unknown action '{name}'", t.name)))?;
            let data_bits: u32 = a
                .params
                .iter()
                .map(|p| match &p.ty {
                    TypeRef::Bits { width, .. } => *width,
                    TypeRef::Named(_) => 0,
                })
                .sum();
            action_bits = action_bits.max(data_bits);
            action_slots += u32::try_from(a.body.len()).unwrap_or(u32::MAX);
        }
        let (first_stage, stages) = match stage_pragma(&t.pragmas) {
            Some((first, _, span)) => (first, span),
            None => (0, 1),
        };
        selector_hash_bits += int_pragma(&t.pragmas, "selector_hash").unwrap_or(0);
        tables.push(TableDecl {
            name: intern(&t.name.name),
            kind,
            key_bits,
            stored_key_bits,
            action_bits,
            entries: t.size.map(|(v, _)| v).unwrap_or(1024),
            first_stage,
            stages,
            action_slots,
        });
    }

    let mut registers = Vec::new();
    for r in &control.registers {
        let ways = int_pragma(&r.pragmas, "hash_ways");
        let (alus, index_hash_bits) = match ways {
            Some(w) => (2 * w, log2_ceil(r.cells) * w),
            None => (1, 0), // direct-indexed single read-modify-write path
        };
        let (first_stage, stages) = match stage_pragma(&r.pragmas) {
            Some((first, _, span)) => (first, span),
            None => (0, 1),
        };
        registers.push(RegisterDecl {
            name: intern(&r.name.name),
            cells: r.cells,
            width_bits: r.cell_width,
            alus,
            index_hash_bits,
            first_stage,
            stages,
            transactional: r.pragmas.iter().any(|p| p.name.name == "transactional"),
        });
    }

    let deps = derive_deps(control, &actions);

    let mut metadata_bits = 0u32;
    for p in &control.params {
        if let TypeRef::Named(ty) = &p.ty {
            if let Some(bits) = env.struct_total_bits(&ty.name) {
                metadata_bits += u32::try_from(bits).unwrap_or(u32::MAX);
            }
        }
    }

    Ok(PipelineProgram {
        name: intern(&control.name.name),
        tables,
        registers,
        deps,
        metadata_bits,
        selector_hash_bits,
        pipes: 1,
    })
}

/// The `@pragma digest <field>` argument, if present.
fn digest_pragma(pragmas: &[Pragma]) -> Option<&FieldPath> {
    pragmas.iter().find_map(|p| {
        if p.name.name != "digest" {
            return None;
        }
        match p.args.first() {
            Some(PragmaArg::Path(path)) => Some(path),
            _ => None,
        }
    })
}

/// A single-integer pragma argument (`hash_ways`, `selector_hash`).
fn int_pragma(pragmas: &[Pragma], name: &str) -> Option<u32> {
    pragmas.iter().find_map(|p| {
        if p.name.name != name {
            return None;
        }
        match p.args.first() {
            Some(PragmaArg::Int(v, _)) => u32::try_from(*v).ok(),
            _ => None,
        }
    })
}

/// ⌈log₂ n⌉ (0 for n ≤ 1).
fn log2_ceil(n: u64) -> u32 {
    if n <= 1 {
        return 0;
    }
    64 - (n - 1).leading_zeros()
}

/// Derive match-dependency edges from the apply block: the
/// *nearest-latest-producer* rule described in the module docs.
fn derive_deps(
    control: &ControlDecl,
    actions: &HashMap<&str, &ActionDecl>,
) -> Vec<TableDependency> {
    let mut walker = DepWalker {
        actions,
        registers: control
            .registers
            .iter()
            .map(|r| r.name.name.as_str())
            .collect(),
        tables: control
            .tables
            .iter()
            .map(|t| (t.name.name.as_str(), t))
            .collect(),
        order: HashMap::new(),
        next_order: 0,
        last_writer: HashMap::new(),
        deps: Vec::new(),
    };
    walker.walk(&control.apply, &mut Vec::new());
    walker.deps
}

struct DepWalker<'a> {
    actions: &'a HashMap<&'a str, &'a ActionDecl>,
    registers: std::collections::HashSet<&'a str>,
    tables: HashMap<&'a str, &'a TableDef>,
    /// Apply order of each unit (first application wins).
    order: HashMap<String, usize>,
    next_order: usize,
    /// Dotted field path → name of the unit that last wrote it.
    last_writer: HashMap<String, String>,
    deps: Vec<TableDependency>,
}

impl DepWalker<'_> {
    /// Record the application of `unit`, whose data inputs are `reads`,
    /// under the enclosing control `producers` (outermost first).
    fn apply_unit(&mut self, unit: &str, reads: &[String], producers: &[String]) {
        let mut candidates: Vec<String> = reads
            .iter()
            .filter_map(|f| self.last_writer.get(f).cloned())
            .collect();
        candidates.extend(producers.iter().cloned());
        let mut best: Option<(usize, String)> = None;
        for name in candidates {
            if name == unit {
                continue;
            }
            if let Some(&ord) = self.order.get(&name) {
                if best.as_ref().map(|(b, _)| ord > *b).unwrap_or(true) {
                    best = Some((ord, name));
                }
            }
        }
        if let Some((_, before)) = best {
            self.deps.push(TableDependency {
                before: intern(&before),
                after: intern(unit),
            });
        }
        self.order.entry(unit.to_string()).or_insert_with(|| {
            let o = self.next_order;
            self.next_order += 1;
            o
        });
    }

    /// Fields a table writes: every assignment destination across its
    /// listed actions.
    fn table_writes(&self, t: &TableDef) -> Vec<String> {
        let mut out = Vec::new();
        for name in &t.actions {
            if let Some(a) = self.actions.get(name.name.as_str()) {
                for stmt in &a.body {
                    out.push(stmt.lhs.dotted());
                }
            }
        }
        out
    }

    fn apply_table(&mut self, name: &str, producers: &[String]) {
        let Some(t) = self.tables.get(name).copied() else {
            return;
        };
        let reads: Vec<String> = t.key.iter().map(|k| k.field.dotted()).collect();
        self.apply_unit(name, &reads, producers);
        for field in self.table_writes(t) {
            self.last_writer.insert(field, name.to_string());
        }
    }

    fn walk(&mut self, stmts: &[ApplyStmt], producers: &mut Vec<String>) {
        for stmt in stmts {
            match stmt {
                ApplyStmt::Apply { target } => {
                    self.apply_table(&target.name, producers);
                }
                ApplyStmt::RegisterOp { dst, reg, index } => {
                    if self.registers.contains(reg.name.as_str()) {
                        let reads: Vec<String> = match index {
                            Expr::Path(p) => vec![p.dotted()],
                            Expr::Lit(_) => Vec::new(),
                        };
                        self.apply_unit(&reg.name, &reads, producers);
                        self.last_writer.insert(dst.dotted(), reg.name.clone());
                    }
                }
                ApplyStmt::If { cond, then, els } => {
                    let gate = match cond {
                        Cond::ApplyResult { table, .. } => {
                            // Evaluating the condition applies the table.
                            self.apply_table(&table.name, producers);
                            Some(table.name.clone())
                        }
                        Cond::Compare { lhs, rhs } => {
                            // The branch is gated by whichever unit last
                            // wrote a field the condition reads.
                            let mut latest: Option<(usize, String)> = None;
                            for e in [lhs, rhs] {
                                if let Expr::Path(p) = e {
                                    if let Some(w) = self.last_writer.get(&p.dotted()) {
                                        if let Some(&ord) = self.order.get(w) {
                                            if latest
                                                .as_ref()
                                                .map(|(b, _)| ord > *b)
                                                .unwrap_or(true)
                                            {
                                                latest = Some((ord, w.clone()));
                                            }
                                        }
                                    }
                                }
                            }
                            latest.map(|(_, w)| w)
                        }
                    };
                    let pushed = gate.is_some();
                    if let Some(g) = gate {
                        producers.push(g);
                    }
                    self.walk(then, producers);
                    self.walk(els, producers);
                    if pushed {
                        producers.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    #[test]
    fn log2_ceil_basics() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(2048), 11);
        assert_eq!(log2_ceil(4096), 12);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("some_table");
        let b = intern("some_table");
        assert!(std::ptr::eq(a, b));
    }

    const SMALL: &str = r#"
header eth_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
struct headers_t { eth_h eth; }
struct meta_t { bit<16> digest; bit<8> verdict; }

parser p(packet_in pkt, out headers_t hdr, inout meta_t meta) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control small(inout headers_t hdr, inout meta_t meta) {
    action set_verdict(bit<8> v) { meta.verdict = v; }
    action miss() { meta.verdict = 8w0; }
    @pragma stage 1 2
    @pragma digest meta.digest
    @pragma selector_hash 16
    table first {
        key = { hdr.eth.dst : exact; hdr.eth.src : exact; }
        actions = { set_verdict; miss; }
        size = 4096;
        default_action = miss();
    }
    table second {
        key = { meta.verdict : exact; }
        actions = { miss; }
        size = 64;
    }
    @pragma stage 3
    @pragma transactional
    @pragma hash_ways 2
    register<bit<8>>(1024) seen;
    apply {
        first.apply();
        meta.verdict = seen.execute(meta.digest);
        second.apply();
    }
}
"#;

    fn lowered() -> PipelineProgram {
        let prog = parse(SMALL).unwrap();
        let a = analyze(&prog);
        assert!(a.is_clean(), "{}", a.render());
        lower(&prog, &a.env).unwrap()
    }

    #[test]
    fn table_resources_follow_the_rules() {
        let p = lowered();
        assert_eq!(p.name, "small");
        let first = &p.tables[0];
        assert_eq!(first.key_bits, 96);
        assert_eq!(first.stored_key_bits, 16); // digest pragma
        assert_eq!(first.action_bits, 8); // widest action
        assert_eq!(first.action_slots, 2); // 1 + 1 statements
        assert_eq!(first.entries, 4096);
        assert_eq!(first.first_stage, 1);
        assert_eq!(first.stages, 2);
        let second = &p.tables[1];
        assert_eq!(second.key_bits, 8);
        assert_eq!(second.stored_key_bits, 8); // no digest pragma
        assert_eq!(second.first_stage, 0); // default placement
        assert_eq!(p.selector_hash_bits, 16);
        assert_eq!(p.metadata_bits, 24); // meta_t only; headers_t has headers
    }

    #[test]
    fn register_resources_follow_the_rules() {
        let p = lowered();
        let r = &p.registers[0];
        assert_eq!(r.cells, 1024);
        assert_eq!(r.width_bits, 8);
        assert_eq!(r.alus, 4); // 2 ways x 2 paths
        assert_eq!(r.index_hash_bits, 20); // ceil(log2 1024) x 2
        assert_eq!(r.first_stage, 3);
        assert!(r.transactional);
    }

    #[test]
    fn nearest_latest_producer_dependencies() {
        let p = lowered();
        // `seen` reads meta.digest (unwritten) — but nothing gates it, so
        // no edge in; `second` reads meta.verdict last written by `seen`.
        let rendered: Vec<(String, String)> = p
            .deps
            .iter()
            .map(|d| (d.before.to_string(), d.after.to_string()))
            .collect();
        assert_eq!(rendered, vec![("seen".to_string(), "second".to_string())]);
    }

    #[test]
    fn gated_applies_depend_on_their_gate() {
        let src = SMALL.replace(
            "        first.apply();\n        meta.verdict = seen.execute(meta.digest);\n        second.apply();",
            "        if (first.apply().miss) {\n            second.apply();\n        }",
        );
        let prog = parse(&src).unwrap();
        let a = analyze(&prog);
        // `seen` is now unused in the apply block; still clean semantically.
        assert!(a.is_clean(), "{}", a.render());
        let p = lower(&prog, &a.env).unwrap();
        assert_eq!(p.deps.len(), 1);
        assert_eq!(p.deps[0].before, "first");
        assert_eq!(p.deps[0].after, "second");
    }
}
