//! Recursive-descent parser for the P4_16 subset.
//!
//! Grammar (see `DESIGN.md` §14 for the prose version):
//!
//! ```text
//! program    := { header | struct | parser | control }
//! header     := 'header' NAME '{' { type NAME ';' } '}'
//! struct     := 'struct' NAME '{' { type NAME ';' } '}'
//! type       := 'bit' '<' INT '>' | NAME
//! parser     := 'parser' NAME '(' params ')' '{' { state } '}'
//! state      := 'state' NAME '{' { 'pkt' '.' 'extract' '(' path ')' ';' }
//!                transition '}'
//! transition := 'transition' NAME ';'
//!             | 'transition' 'select' '(' expr ')' '{'
//!                   { LIT ':' NAME ';' } [ 'default' ':' NAME ';' ] '}'
//! control    := 'control' NAME '(' params ')' '{'
//!                   { pragma* ( action | table | register ) } apply '}'
//! action     := 'action' NAME '(' [ 'bit<'N'>' NAME {',' …} ] ')'
//!                   '{' { path '=' expr ';' } '}'
//! table      := 'table' NAME '{' { table_prop } '}'
//! table_prop := 'key' '=' '{' { path ':' NAME ';' } '}' [';']
//!             | 'actions' '=' '{' { NAME ';' } '}' [';']
//!             | 'size' '=' INT ';'
//!             | 'default_action' '=' NAME [ '(' [args] ')' ] ';'
//! register   := 'register' '<' 'bit<'N'>' '>' '(' INT ')' NAME ';'
//! apply      := 'apply' '{' { apply_stmt } '}'
//! apply_stmt := NAME '.' 'apply' '(' ')' ';'
//!             | path '=' NAME '.' 'execute' '(' expr ')' ';'
//!             | 'if' '(' cond ')' '{' … '}' [ 'else' '{' … '}' ]
//! cond       := ['!'] NAME '.' 'apply' '(' ')' '.' ('hit'|'miss')
//!             | expr ('=='|'!=') expr
//! pragma     := '@' 'pragma' NAME { INT | path }      (line-terminated)
//! ```
//!
//! Parse errors are fatal (one error, with span); semantic errors are
//! collected exhaustively by [`crate::sema`].

use crate::ast::*;
use crate::lex::{lex, LexError, Span, Token, TokenKind};

/// A fatal syntax error.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Where the error is.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

/// Parse a source string into a [`Program`].
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        // The token stream always ends with Eof, and no rule advances past
        // it, so the index stays in range; saturate defensively anyway.
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            span: self.peek().span,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, ParseError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            self.err(format!("expected {what}, found {}", self.peek().kind))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Ident, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Ident { name, span: t.span })
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    /// Is the next token the given bare word?
    fn at_word(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == word)
    }

    /// Consume a required keyword.
    fn keyword(&mut self, word: &str) -> Result<Span, ParseError> {
        if self.at_word(word) {
            Ok(self.bump().span)
        } else {
            self.err(format!("expected '{word}', found {}", self.peek().kind))
        }
    }

    fn int(&mut self, what: &str) -> Result<(u64, Span), ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(v) => {
                self.bump();
                match u64::try_from(v) {
                    Ok(v) => Ok((v, t.span)),
                    Err(_) => self.err(format!("{what} {v} is out of range")),
                }
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            if self.peek().kind == TokenKind::Eof {
                return Ok(prog);
            }
            if self.at_word("header") {
                self.bump();
                let (name, fields) = self.braced_fields("header")?;
                prog.headers.push(HeaderDecl { name, fields });
            } else if self.at_word("struct") {
                self.bump();
                let (name, fields) = self.braced_fields("struct")?;
                prog.structs.push(StructDecl { name, fields });
            } else if self.at_word("parser") {
                prog.parsers.push(self.parser_decl()?);
            } else if self.at_word("control") {
                prog.controls.push(self.control_decl()?);
            } else {
                return self.err(format!(
                    "expected 'header', 'struct', 'parser' or 'control', found {}",
                    self.peek().kind
                ));
            }
        }
    }

    /// `NAME { type NAME ; ... }` — shared by header and struct decls.
    fn braced_fields(&mut self, what: &str) -> Result<(Ident, Vec<FieldDecl>), ParseError> {
        let name = self.ident(&format!("{what} name"))?;
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut fields = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let ty = self.type_ref()?;
            let fname = self.ident("field name")?;
            self.expect(TokenKind::Semi, "';'")?;
            fields.push(FieldDecl { ty, name: fname });
        }
        self.bump(); // }
        Ok((name, fields))
    }

    /// `bit<N>` or a named type.
    fn type_ref(&mut self) -> Result<TypeRef, ParseError> {
        if self.at_word("bit") {
            let span = self.bump().span;
            self.expect(TokenKind::Lt, "'<'")?;
            let (w, wspan) = self.int("bit width")?;
            let width = u32::try_from(w)
                .ok()
                .filter(|w| *w > 0 && *w <= 4096)
                .ok_or(ParseError {
                    span: wspan,
                    message: format!("bit width {w} outside 1..=4096"),
                })?;
            self.expect(TokenKind::Gt, "'>'")?;
            Ok(TypeRef::Bits { width, span })
        } else {
            Ok(TypeRef::Named(self.ident("type name")?))
        }
    }

    /// `( [dir] type name, ... )`.
    fn params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        while self.peek().kind != TokenKind::RParen {
            let dir = if self.at_word("in") {
                self.bump();
                ParamDir::In
            } else if self.at_word("out") {
                self.bump();
                ParamDir::Out
            } else if self.at_word("inout") {
                self.bump();
                ParamDir::InOut
            } else {
                ParamDir::None
            };
            let ty = self.type_ref()?;
            let name = self.ident("parameter name")?;
            params.push(Param { dir, ty, name });
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            }
        }
        self.bump(); // )
        Ok(params)
    }

    fn field_path(&mut self) -> Result<FieldPath, ParseError> {
        let mut parts = vec![self.ident("field path")?];
        while self.peek().kind == TokenKind::Dot {
            self.bump();
            parts.push(self.ident("field name after '.'")?);
        }
        Ok(FieldPath { parts })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Lit(Literal {
                    width: None,
                    value,
                    span: t.span,
                }))
            }
            TokenKind::SizedInt { width, value } => {
                self.bump();
                Ok(Expr::Lit(Literal {
                    width: Some(width),
                    value,
                    span: t.span,
                }))
            }
            TokenKind::Ident(_) => Ok(Expr::Path(self.field_path()?)),
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    fn parser_decl(&mut self) -> Result<ParserDecl, ParseError> {
        self.keyword("parser")?;
        let name = self.ident("parser name")?;
        let params = self.params()?;
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut states = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            states.push(self.state_decl()?);
        }
        self.bump(); // }
        Ok(ParserDecl {
            name,
            params,
            states,
        })
    }

    fn state_decl(&mut self) -> Result<StateDecl, ParseError> {
        self.keyword("state")?;
        let name = self.ident("state name")?;
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut extracts = Vec::new();
        let transition = loop {
            if self.at_word("transition") {
                self.bump();
                break self.transition()?;
            }
            // pkt.extract(hdr.x);
            let path = self.field_path()?;
            let is_extract = path.parts.len() == 2 && path.parts[1].name == "extract";
            if !is_extract {
                return Err(ParseError {
                    span: path.span(),
                    message: format!(
                        "expected 'pkt.extract(...)' or 'transition', found '{}'",
                        path.dotted()
                    ),
                });
            }
            self.expect(TokenKind::LParen, "'('")?;
            let target = self.field_path()?;
            self.expect(TokenKind::RParen, "')'")?;
            self.expect(TokenKind::Semi, "';'")?;
            extracts.push(target);
        };
        self.expect(TokenKind::RBrace, "'}'")?;
        Ok(StateDecl {
            name,
            extracts,
            transition,
        })
    }

    fn transition(&mut self) -> Result<Transition, ParseError> {
        if self.at_word("select") {
            self.bump();
            self.expect(TokenKind::LParen, "'('")?;
            let key = self.expr()?;
            self.expect(TokenKind::RParen, "')'")?;
            self.expect(TokenKind::LBrace, "'{'")?;
            let mut arms = Vec::new();
            let mut default = None;
            while self.peek().kind != TokenKind::RBrace {
                if self.at_word("default") {
                    self.bump();
                    self.expect(TokenKind::Colon, "':'")?;
                    default = Some(self.ident("state name")?);
                    self.expect(TokenKind::Semi, "';'")?;
                    continue;
                }
                let t = self.peek().clone();
                let value = match t.kind {
                    TokenKind::Int(value) => Literal {
                        width: None,
                        value,
                        span: t.span,
                    },
                    TokenKind::SizedInt { width, value } => Literal {
                        width: Some(width),
                        value,
                        span: t.span,
                    },
                    other => return self.err(format!("expected a select value, found {other}")),
                };
                self.bump();
                self.expect(TokenKind::Colon, "':'")?;
                let target = self.ident("state name")?;
                self.expect(TokenKind::Semi, "';'")?;
                arms.push(SelectArm { value, target });
            }
            self.bump(); // }
            self.expect(TokenKind::Semi, "';'")?;
            Ok(Transition::Select { key, arms, default })
        } else {
            let target = self.ident("state name")?;
            self.expect(TokenKind::Semi, "';'")?;
            Ok(Transition::Direct(target))
        }
    }

    /// Pragma lines attached to the next declaration: `@pragma name args…`,
    /// arguments running to the end of the physical line.
    fn pragmas(&mut self) -> Result<Vec<Pragma>, ParseError> {
        let mut out = Vec::new();
        while self.peek().kind == TokenKind::At {
            let at_line = self.bump().span.line;
            self.keyword("pragma")?;
            let name = self.ident("pragma name")?;
            let mut args = Vec::new();
            while self.peek().span.line == at_line {
                match &self.peek().kind {
                    TokenKind::Int(_) => {
                        let (v, s) = self.int("pragma argument")?;
                        args.push(PragmaArg::Int(v, s));
                    }
                    TokenKind::Ident(_) => args.push(PragmaArg::Path(self.field_path()?)),
                    _ => break,
                }
            }
            out.push(Pragma { name, args });
        }
        Ok(out)
    }

    fn control_decl(&mut self) -> Result<ControlDecl, ParseError> {
        self.keyword("control")?;
        let name = self.ident("control name")?;
        let params = self.params()?;
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut actions = Vec::new();
        let mut tables = Vec::new();
        let mut registers = Vec::new();
        let apply = loop {
            let pragmas = self.pragmas()?;
            if self.at_word("action") {
                if let Some(p) = pragmas.first() {
                    return Err(ParseError {
                        span: p.name.span,
                        message: "pragmas may precede tables and registers only".to_string(),
                    });
                }
                actions.push(self.action_decl()?);
            } else if self.at_word("table") {
                tables.push(self.table_def(pragmas)?);
            } else if self.at_word("register") {
                registers.push(self.register_def(pragmas)?);
            } else if self.at_word("apply") {
                if let Some(p) = pragmas.first() {
                    return Err(ParseError {
                        span: p.name.span,
                        message: "pragmas may precede tables and registers only".to_string(),
                    });
                }
                self.bump();
                self.expect(TokenKind::LBrace, "'{'")?;
                let stmts = self.apply_block()?;
                break stmts;
            } else {
                return self.err(format!(
                    "expected 'action', 'table', 'register' or 'apply', found {}",
                    self.peek().kind
                ));
            }
        };
        self.expect(TokenKind::RBrace, "'}'")?;
        Ok(ControlDecl {
            name,
            params,
            actions,
            tables,
            registers,
            apply,
        })
    }

    fn action_decl(&mut self) -> Result<ActionDecl, ParseError> {
        self.keyword("action")?;
        let name = self.ident("action name")?;
        self.expect(TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        while self.peek().kind != TokenKind::RParen {
            let ty = self.type_ref()?;
            let pname = self.ident("parameter name")?;
            params.push(FieldDecl { ty, name: pname });
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            }
        }
        self.bump(); // )
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let lhs = self.field_path()?;
            self.expect(TokenKind::Eq, "'='")?;
            let rhs = self.expr()?;
            self.expect(TokenKind::Semi, "';'")?;
            body.push(Assign { lhs, rhs });
        }
        self.bump(); // }
        Ok(ActionDecl { name, params, body })
    }

    fn table_def(&mut self, pragmas: Vec<Pragma>) -> Result<TableDef, ParseError> {
        self.keyword("table")?;
        let name = self.ident("table name")?;
        self.expect(TokenKind::LBrace, "'{'")?;
        let mut key = Vec::new();
        let mut actions = Vec::new();
        let mut size = None;
        let mut default_action = None;
        while self.peek().kind != TokenKind::RBrace {
            if self.at_word("key") {
                self.bump();
                self.expect(TokenKind::Eq, "'='")?;
                self.expect(TokenKind::LBrace, "'{'")?;
                while self.peek().kind != TokenKind::RBrace {
                    let field = self.field_path()?;
                    self.expect(TokenKind::Colon, "':'")?;
                    let match_kind = self.ident("match kind")?;
                    self.expect(TokenKind::Semi, "';'")?;
                    key.push(KeyEntry { field, match_kind });
                }
                self.bump(); // }
                self.eat_semi();
            } else if self.at_word("actions") {
                self.bump();
                self.expect(TokenKind::Eq, "'='")?;
                self.expect(TokenKind::LBrace, "'{'")?;
                while self.peek().kind != TokenKind::RBrace {
                    actions.push(self.ident("action name")?);
                    self.expect(TokenKind::Semi, "';'")?;
                }
                self.bump(); // }
                self.eat_semi();
            } else if self.at_word("size") {
                self.bump();
                self.expect(TokenKind::Eq, "'='")?;
                size = Some(self.int("table size")?);
                self.expect(TokenKind::Semi, "';'")?;
            } else if self.at_word("default_action") {
                self.bump();
                self.expect(TokenKind::Eq, "'='")?;
                let aname = self.ident("action name")?;
                let mut args = Vec::new();
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    while self.peek().kind != TokenKind::RParen {
                        args.push(self.expr()?);
                        if self.peek().kind == TokenKind::Comma {
                            self.bump();
                        }
                    }
                    self.bump(); // )
                }
                self.expect(TokenKind::Semi, "';'")?;
                default_action = Some(ActionCall { name: aname, args });
            } else {
                return self.err(format!(
                    "expected 'key', 'actions', 'size' or 'default_action', found {}",
                    self.peek().kind
                ));
            }
        }
        self.bump(); // }
        Ok(TableDef {
            pragmas,
            name,
            key,
            actions,
            size,
            default_action,
        })
    }

    fn register_def(&mut self, pragmas: Vec<Pragma>) -> Result<RegisterDef, ParseError> {
        self.keyword("register")?;
        self.expect(TokenKind::Lt, "'<'")?;
        let ty = self.type_ref()?;
        let (cell_width, width_span) = match ty {
            TypeRef::Bits { width, span } => (width, span),
            TypeRef::Named(id) => {
                return Err(ParseError {
                    span: id.span,
                    message: format!("register cell type must be bit<N>, found '{}'", id.name),
                })
            }
        };
        self.expect(TokenKind::Gt, "'>'")?;
        self.expect(TokenKind::LParen, "'('")?;
        let (cells, _) = self.int("register size")?;
        self.expect(TokenKind::RParen, "')'")?;
        let name = self.ident("register name")?;
        self.expect(TokenKind::Semi, "';'")?;
        Ok(RegisterDef {
            pragmas,
            cell_width,
            width_span,
            cells,
            name,
        })
    }

    fn eat_semi(&mut self) {
        if self.peek().kind == TokenKind::Semi {
            self.bump();
        }
    }

    fn apply_block(&mut self) -> Result<Vec<ApplyStmt>, ParseError> {
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            stmts.push(self.apply_stmt()?);
        }
        self.bump(); // }
        Ok(stmts)
    }

    fn apply_stmt(&mut self) -> Result<ApplyStmt, ParseError> {
        if self.at_word("if") {
            self.bump();
            self.expect(TokenKind::LParen, "'('")?;
            let cond = self.cond()?;
            self.expect(TokenKind::RParen, "')'")?;
            self.expect(TokenKind::LBrace, "'{'")?;
            let then = self.apply_block()?;
            let els = if self.at_word("else") {
                self.bump();
                self.expect(TokenKind::LBrace, "'{'")?;
                self.apply_block()?
            } else {
                Vec::new()
            };
            return Ok(ApplyStmt::If { cond, then, els });
        }
        let path = self.field_path()?;
        // `X.apply();`
        if path.parts.len() == 2 && path.parts[1].name == "apply" {
            self.expect(TokenKind::LParen, "'('")?;
            self.expect(TokenKind::RParen, "')'")?;
            self.expect(TokenKind::Semi, "';'")?;
            return Ok(ApplyStmt::Apply {
                target: path.parts.into_iter().next().unwrap_or_else(|| Ident {
                    name: String::new(),
                    span: Span { line: 0, col: 0 },
                }),
            });
        }
        // `dst = reg.execute(idx);`
        self.expect(TokenKind::Eq, "'='")?;
        if !matches!(self.peek().kind, TokenKind::Ident(_)) {
            return self.err(format!(
                "apply-block assignments must call '<register>.execute(...)', found {}",
                self.peek().kind
            ));
        }
        let call = self.field_path()?;
        if call.parts.len() != 2 || call.parts[1].name != "execute" {
            return Err(ParseError {
                span: call.span(),
                message: format!(
                    "apply-block assignments must call '<register>.execute(...)', found '{}'",
                    call.dotted()
                ),
            });
        }
        self.expect(TokenKind::LParen, "'('")?;
        let index = self.expr()?;
        self.expect(TokenKind::RParen, "')'")?;
        self.expect(TokenKind::Semi, "';'")?;
        let reg = call.parts.into_iter().next().unwrap_or_else(|| Ident {
            name: String::new(),
            span: Span { line: 0, col: 0 },
        });
        Ok(ApplyStmt::RegisterOp {
            dst: path,
            reg,
            index,
        })
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let negated = if self.peek().kind == TokenKind::Bang {
            self.bump();
            true
        } else {
            false
        };
        // `X.apply().hit|miss` starts with an ident path containing `apply`.
        if matches!(self.peek().kind, TokenKind::Ident(_)) && matches!(self.peek2(), TokenKind::Dot)
        {
            let save = self.pos;
            let path = self.field_path()?;
            if path.parts.len() == 2 && path.parts[1].name == "apply" {
                self.expect(TokenKind::LParen, "'('")?;
                self.expect(TokenKind::RParen, "')'")?;
                self.expect(TokenKind::Dot, "'.'")?;
                let verdict = self.ident("'hit' or 'miss'")?;
                let hit = match verdict.name.as_str() {
                    "hit" => true,
                    "miss" => false,
                    other => {
                        return Err(ParseError {
                            span: verdict.span,
                            message: format!("expected 'hit' or 'miss', found '{other}'"),
                        })
                    }
                };
                let table = path.parts.into_iter().next().unwrap_or_else(|| Ident {
                    name: String::new(),
                    span: Span { line: 0, col: 0 },
                });
                return Ok(Cond::ApplyResult {
                    table,
                    hit: hit != negated,
                });
            }
            self.pos = save;
        }
        if negated {
            return self.err("'!' applies to '<table>.apply().hit/miss' conditions only");
        }
        let lhs = self.expr()?;
        let eq = match self.peek().kind {
            TokenKind::EqEq => true,
            TokenKind::NotEq => false,
            _ => return self.err(format!("expected '==' or '!=', found {}", self.peek().kind)),
        };
        self.bump();
        let _ = eq; // equality vs inequality does not matter statically
        let rhs = self.expr()?;
        Ok(Cond::Compare { lhs, rhs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
header eth_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
struct headers_t { eth_h eth; }
struct meta_t { bit<16> digest; }

parser p(packet_in pkt, out headers_t hdr, inout meta_t meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            16w0x0800 : done;
            default : accept;
        };
    }
    state done { transition accept; }
}

control c(inout headers_t hdr, inout meta_t meta) {
    action setd(bit<16> d) { meta.digest = d; }
    action nop() { meta.digest = 16w0; }
    @pragma stage 0 2
    @pragma digest meta.digest
    table t {
        key = { hdr.eth.dst : exact; }
        actions = { setd; nop; }
        size = 1024;
        default_action = nop();
    }
    @pragma stage 2
    @pragma transactional
    register<bit<1>>(2048) r;
    apply {
        if (t.apply().miss) {
            meta.digest = r.execute(hdr.eth.dst);
        }
    }
}
"#;

    #[test]
    fn parses_the_mini_program() {
        let prog = parse(MINI).unwrap();
        assert_eq!(prog.headers.len(), 1);
        assert_eq!(prog.structs.len(), 2);
        assert_eq!(prog.parsers.len(), 1);
        assert_eq!(prog.controls.len(), 1);
        let c = &prog.controls[0];
        assert_eq!(c.actions.len(), 2);
        assert_eq!(c.tables.len(), 1);
        assert_eq!(c.registers.len(), 1);
        let t = &c.tables[0];
        assert_eq!(t.pragmas.len(), 2);
        assert_eq!(t.key.len(), 1);
        assert_eq!(t.size.map(|(v, _)| v), Some(1024));
        assert_eq!(c.registers[0].cells, 2048);
        assert_eq!(c.registers[0].cell_width, 1);
        assert_eq!(c.registers[0].pragmas.len(), 2);
        assert_eq!(c.apply.len(), 1);
    }

    #[test]
    fn select_arms_and_default_are_kept() {
        let prog = parse(MINI).unwrap();
        let state = &prog.parsers[0].states[0];
        match &state.transition {
            Transition::Select { arms, default, .. } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].target.name, "done");
                assert_eq!(default.as_ref().map(|d| d.name.as_str()), Some("accept"));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn pragma_args_stop_at_end_of_line() {
        let prog = parse(MINI).unwrap();
        let t = &prog.controls[0].tables[0];
        assert_eq!(t.pragmas[0].name.name, "stage");
        assert_eq!(t.pragmas[0].args.len(), 2);
        assert_eq!(t.pragmas[1].name.name, "digest");
        assert_eq!(t.pragmas[1].args.len(), 1);
    }

    #[test]
    fn negated_apply_condition_folds_into_hit_flag() {
        let src = MINI.replace("if (t.apply().miss)", "if (!t.apply().hit)");
        let prog = parse(&src).unwrap();
        match &prog.controls[0].apply[0] {
            ApplyStmt::If {
                cond: Cond::ApplyResult { table, hit },
                ..
            } => {
                assert_eq!(table.name, "t");
                assert!(!hit);
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_spans() {
        let e = parse("header h { bit<48 dst; }").unwrap_err();
        assert!(e.message.contains("expected '>'"), "{e}");
        assert_eq!(e.span.line, 1);
        let e = parse("table t {}").unwrap_err();
        assert!(e.message.contains("header"), "{e}");
    }

    #[test]
    fn apply_rejects_arbitrary_assignments() {
        let src = MINI.replace(
            "meta.digest = r.execute(hdr.eth.dst);",
            "meta.digest = 16w1;",
        );
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("execute"), "{e}");
    }
}
