//! Spanned abstract syntax tree for the P4_16 subset.
//!
//! Every name-bearing node carries the [`Span`] it was parsed at, so the
//! semantic pass ([`crate::sema`]) can emit source-located diagnostics and
//! the lowering pass ([`crate::lower`]) can blame a declaration when a
//! pragma is malformed.

use crate::lex::Span;

/// An identifier with its source location.
#[derive(Clone, Debug)]
pub struct Ident {
    /// The name.
    pub name: String,
    /// Where it appears.
    pub span: Span,
}

impl std::fmt::Display for Ident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A type reference: `bit<N>` or a named type (`ipv4_h`, `headers_t`,
/// `packet_in`).
#[derive(Clone, Debug)]
pub enum TypeRef {
    /// `bit<N>`.
    Bits {
        /// Bit width.
        width: u32,
        /// Where the type is written.
        span: Span,
    },
    /// A named type.
    Named(Ident),
}

impl TypeRef {
    /// The source location of the type reference.
    pub fn span(&self) -> Span {
        match self {
            TypeRef::Bits { span, .. } => *span,
            TypeRef::Named(id) => id.span,
        }
    }
}

/// A dotted field path (`hdr.ipv4.dst_addr`, `meta.version`, or a bare
/// action-parameter reference).
#[derive(Clone, Debug)]
pub struct FieldPath {
    /// Path components, outermost first.
    pub parts: Vec<Ident>,
}

impl FieldPath {
    /// Where the path starts.
    pub fn span(&self) -> Span {
        self.parts
            .first()
            .map(|p| p.span)
            .unwrap_or(Span { line: 0, col: 0 })
    }

    /// Render as `a.b.c`.
    pub fn dotted(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// An integer literal, optionally width-sized (`16w0x0800`).
#[derive(Clone, Copy, Debug)]
pub struct Literal {
    /// Declared width (None for bare integers, which adapt to context).
    pub width: Option<u32>,
    /// Value.
    pub value: u128,
    /// Location.
    pub span: Span,
}

/// An expression: a field/parameter reference or a literal.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Field or parameter reference.
    Path(FieldPath),
    /// Integer literal.
    Lit(Literal),
}

impl Expr {
    /// Where the expression starts.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path(p) => p.span(),
            Expr::Lit(l) => l.span,
        }
    }
}

/// One field in a header or struct.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    /// Field type.
    pub ty: TypeRef,
    /// Field name.
    pub name: Ident,
}

/// `header name { ... }`.
#[derive(Clone, Debug)]
pub struct HeaderDecl {
    /// Header type name.
    pub name: Ident,
    /// Fields (must all be `bit<N>` — checked by sema).
    pub fields: Vec<FieldDecl>,
}

/// `struct name { ... }`.
#[derive(Clone, Debug)]
pub struct StructDecl {
    /// Struct type name.
    pub name: Ident,
    /// Fields (header-typed for the headers struct, `bit<N>` for metadata).
    pub fields: Vec<FieldDecl>,
}

/// Parameter direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamDir {
    /// No direction keyword.
    None,
    /// `in`.
    In,
    /// `out`.
    Out,
    /// `inout`.
    InOut,
}

/// One parser/control parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Direction.
    pub dir: ParamDir,
    /// Type.
    pub ty: TypeRef,
    /// Name.
    pub name: Ident,
}

/// A `transition` at the end of a parser state.
#[derive(Clone, Debug)]
pub enum Transition {
    /// `transition next_state;`
    Direct(Ident),
    /// `transition select(key) { lit : state; ... default : state; }`
    Select {
        /// The select key expression.
        key: Expr,
        /// Value → state arms.
        arms: Vec<SelectArm>,
        /// The `default :` target, if any.
        default: Option<Ident>,
    },
}

/// One arm of a `select`.
#[derive(Clone, Debug)]
pub struct SelectArm {
    /// Matched literal.
    pub value: Literal,
    /// Target state.
    pub target: Ident,
}

/// `state name { extracts...; transition ...; }`.
#[derive(Clone, Debug)]
pub struct StateDecl {
    /// State name.
    pub name: Ident,
    /// `pkt.extract(hdr.x)` calls, in order.
    pub extracts: Vec<FieldPath>,
    /// The closing transition.
    pub transition: Transition,
}

/// `parser name(params) { states }`.
#[derive(Clone, Debug)]
pub struct ParserDecl {
    /// Parser name.
    pub name: Ident,
    /// Parameters (`packet_in pkt, out headers_t hdr, inout metadata_t meta`).
    pub params: Vec<Param>,
    /// States.
    pub states: Vec<StateDecl>,
}

/// One `lhs = rhs;` statement in an action body (one VLIW primitive).
#[derive(Clone, Debug)]
pub struct Assign {
    /// Destination field.
    pub lhs: FieldPath,
    /// Source expression.
    pub rhs: Expr,
}

/// `action name(bit<N> p, ...) { assigns }`.
#[derive(Clone, Debug)]
pub struct ActionDecl {
    /// Action name.
    pub name: Ident,
    /// Parameters (action data; widths sum to the table's action bits).
    pub params: Vec<FieldDecl>,
    /// Body statements.
    pub body: Vec<Assign>,
}

/// An `@pragma name args...` line attached to the following declaration.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// Pragma name (`stage`, `transactional`, `hash_ways`, `digest`,
    /// `selector_hash`).
    pub name: Ident,
    /// Arguments (integers or field paths).
    pub args: Vec<PragmaArg>,
}

/// One pragma argument.
#[derive(Clone, Debug)]
pub enum PragmaArg {
    /// Integer argument.
    Int(u64, Span),
    /// Field path / word argument.
    Path(FieldPath),
}

impl PragmaArg {
    /// Where the argument is.
    pub fn span(&self) -> Span {
        match self {
            PragmaArg::Int(_, s) => *s,
            PragmaArg::Path(p) => p.span(),
        }
    }
}

/// One `field : match_kind;` entry in a table key.
#[derive(Clone, Debug)]
pub struct KeyEntry {
    /// The matched field.
    pub field: FieldPath,
    /// Match kind (`exact`, `ternary`, `lpm`).
    pub match_kind: Ident,
}

/// `default_action = name(args);` (args optional).
#[derive(Clone, Debug)]
pub struct ActionCall {
    /// Action name.
    pub name: Ident,
    /// Compile-time arguments (empty when written bare).
    pub args: Vec<Expr>,
}

/// `table name { key/actions/size/default_action }` with leading pragmas.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Pragmas preceding the declaration.
    pub pragmas: Vec<Pragma>,
    /// Table name.
    pub name: Ident,
    /// Key entries.
    pub key: Vec<KeyEntry>,
    /// Actions the table may invoke.
    pub actions: Vec<Ident>,
    /// `size = N;`
    pub size: Option<(u64, Span)>,
    /// `default_action = ...;`
    pub default_action: Option<ActionCall>,
}

/// `register<bit<W>>(cells) name;` with leading pragmas.
#[derive(Clone, Debug)]
pub struct RegisterDef {
    /// Pragmas preceding the declaration.
    pub pragmas: Vec<Pragma>,
    /// Cell width in bits.
    pub cell_width: u32,
    /// Where the width is written.
    pub width_span: Span,
    /// Number of cells.
    pub cells: u64,
    /// Register name.
    pub name: Ident,
}

/// A condition in an apply-block `if`.
#[derive(Clone, Debug)]
pub enum Cond {
    /// `name.apply().hit` / `name.apply().miss` / `!name.apply().hit`.
    ApplyResult {
        /// The applied table.
        table: Ident,
        /// True for `.hit` (after folding any leading `!`).
        hit: bool,
    },
    /// `lhs == rhs` / `lhs != rhs`.
    Compare {
        /// Left side.
        lhs: Expr,
        /// Right side.
        rhs: Expr,
    },
}

/// One statement in the control's `apply { ... }` block.
#[derive(Clone, Debug)]
pub enum ApplyStmt {
    /// `name.apply();`
    Apply {
        /// The applied table.
        target: Ident,
    },
    /// `dst = reg.execute(index);` — a stateful register access.
    RegisterOp {
        /// Destination metadata field.
        dst: FieldPath,
        /// The register instance.
        reg: Ident,
        /// Index expression.
        index: Expr,
    },
    /// `if (cond) { ... } else { ... }`.
    If {
        /// Condition.
        cond: Cond,
        /// Then branch.
        then: Vec<ApplyStmt>,
        /// Else branch (empty when absent).
        els: Vec<ApplyStmt>,
    },
}

/// `control name(params) { actions/tables/registers; apply { ... } }`.
#[derive(Clone, Debug)]
pub struct ControlDecl {
    /// Control name (becomes the lowered program name).
    pub name: Ident,
    /// Parameters.
    pub params: Vec<Param>,
    /// Actions, in declaration order.
    pub actions: Vec<ActionDecl>,
    /// Tables, in declaration order.
    pub tables: Vec<TableDef>,
    /// Registers, in declaration order.
    pub registers: Vec<RegisterDef>,
    /// The apply block.
    pub apply: Vec<ApplyStmt>,
}

/// A whole parsed program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Header type declarations.
    pub headers: Vec<HeaderDecl>,
    /// Struct type declarations.
    pub structs: Vec<StructDecl>,
    /// Parsers (the subset expects exactly one; sema checks).
    pub parsers: Vec<ParserDecl>,
    /// Controls (the subset expects exactly one; sema checks).
    pub controls: Vec<ControlDecl>,
}
