//! Vendored, dependency-free stand-in for the `parking_lot` 0.12 API subset
//! this workspace uses: [`Mutex`], [`RwLock`], and [`Condvar`] with
//! non-poisoning, guard-returning lock methods. Backed by `std::sync`;
//! poison is ignored (parking_lot has no poisoning), so a panicking holder
//! does not wedge other threads the way raw `std` locks would.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking; ignores poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's panic-free signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (blocking; ignores poison).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard (blocking; ignores poison).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A condition variable usable with [`Mutex`] guards.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free dance: std's wait consumes the guard; re-install it.
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the owned guard behind `slot`, putting the result back.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Move the guard out by swapping through Option is impossible without
    // a default; use ptr::read/write with an abort-on-panic shield instead.
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            // A panic in `f` would leave `slot` logically uninitialised;
            // aborting is the only sound option.
            std::process::abort();
        }
    }
    unsafe {
        let guard = std::ptr::read(slot);
        let shield = AbortOnDrop;
        let new = f(guard);
        std::mem::forget(shield);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert!(t.join().unwrap());
    }
}
