//! Vendored, dependency-free stand-in for the subset of `proptest` 1.x this
//! workspace's property tests use. The build environment has no registry
//! access, so the workspace pins these path crates instead of crates.io.
//!
//! What is kept: the [`proptest!`] macro (with `#![proptest_config(..)]`,
//! `name in strategy` and `name: Type` parameters), `prop_assert*!`,
//! weighted and unweighted [`prop_oneof!`], [`strategy::Strategy`] with
//! `prop_map`, range/tuple strategies, [`arbitrary::any`],
//! [`collection::vec`] / [`collection::hash_set`], and
//! [`sample::Index`]. Case seeds are derived deterministically from the
//! source file and test name, and any `cc` entries in the sibling
//! `*.proptest-regressions` file are absorbed as extra seeds.
//!
//! What is intentionally absent: shrinking. On failure the harness reports
//! the generated inputs and the case seed instead of minimising them.

pub mod strategy {
    //! The strategy trait and combinators.

    use crate::runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// A generator of test values.
    ///
    /// Object-safe so heterogeneous [`prop_oneof!`](crate::prop_oneof) arms
    /// can be boxed behind `dyn Strategy`.
    pub trait Strategy {
        /// The value type produced.
        type Value: Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone + Debug>(pub V);

    impl<V: Clone + Debug> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies of one value type — what
    /// [`prop_oneof!`](crate::prop_oneof) builds.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V: Debug> Union<V> {
        /// Build from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Box a strategy into a weighted [`Union`] arm (used by
    /// [`prop_oneof!`](crate::prop_oneof) to unify heterogeneous arm types).
    pub fn union_arm<V, S>(weight: u32, s: S) -> (u32, Box<dyn Strategy<Value = V>>)
    where
        V: Debug,
        S: Strategy<Value = V> + 'static,
    {
        (weight, Box::new(s))
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical whole-domain strategy per type.

    use crate::runner::TestRng;
    use crate::strategy::Strategy;
    use rand::RngCore;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Produce one uniformly-drawn value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.next_u64())
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An index into a collection whose length is unknown at generation
    /// time: resolve with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Wrap a raw draw.
        pub fn new(raw: u64) -> Index {
            Index(raw)
        }

        /// Resolve against a collection of length `len` (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::runner::TestRng;
    use crate::strategy::Strategy;
    use rand::Rng;
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;

    /// A size constraint for generated collections: `[min, max]` inclusive.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` of values from `element`, sized within `size` when the
    /// element domain allows (draws are capped, so a tiny domain may yield
    /// fewer than `min` elements — same caveat as upstream).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod runner {
    //! Case scheduling, seeding, and failure reporting.

    use std::path::{Path, PathBuf};

    /// The RNG driving generation (re-exported so strategies can name it).
    pub type TestRng = rand::rngs::SmallRng;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Run `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The inputs were rejected (skipped, not failed).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Locate the source file on disk. `file!()` is workspace-root-relative
    /// while tests run from the package directory, so walk `manifest_dir`
    /// and its ancestors.
    fn resolve_source(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
        let rel = Path::new(source_file);
        if rel.is_absolute() {
            return rel.exists().then(|| rel.to_path_buf());
        }
        let mut dir = Some(Path::new(manifest_dir));
        while let Some(d) = dir {
            let candidate = d.join(rel);
            if candidate.exists() {
                return Some(candidate);
            }
            dir = d.parent();
        }
        None
    }

    /// Extra seeds from a sibling `*.proptest-regressions` file. Each `cc`
    /// line's digest is hashed into a seed so persisted counterexamples
    /// keep being exercised (without upstream's generator, the original
    /// inputs cannot be reconstructed byte-for-byte — known-failing inputs
    /// should also be pinned as explicit regression tests).
    fn regression_seeds(manifest_dir: &str, source_file: &str) -> Vec<u64> {
        let Some(src) = resolve_source(manifest_dir, source_file) else {
            return Vec::new();
        };
        let reg = src.with_extension("proptest-regressions");
        let Ok(contents) = std::fs::read_to_string(&reg) else {
            return Vec::new();
        };
        contents
            .lines()
            .filter_map(|line| {
                let mut it = line.split_whitespace();
                (it.next() == Some("cc")).then(|| it.next()).flatten()
            })
            .map(|digest| fnv1a(digest.as_bytes()))
            .collect()
    }

    /// The deterministic seed schedule for one test: persisted-regression
    /// seeds first, then `cfg.cases` fresh seeds derived from the source
    /// path and test name.
    pub fn case_seeds(
        manifest_dir: &str,
        source_file: &str,
        test_name: &str,
        cfg: &ProptestConfig,
    ) -> Vec<u64> {
        let mut seeds = regression_seeds(manifest_dir, source_file);
        let base = fnv1a(source_file.as_bytes()) ^ fnv1a(test_name.as_bytes()).rotate_left(17);
        seeds.extend((0..cfg.cases as u64).map(|i| splitmix64(base.wrapping_add(i))));
        seeds
    }

    /// Drive every case of one property test. `f` returns the formatted
    /// inputs plus the (panic-caught) body outcome.
    pub fn run_cases<F>(
        cfg: ProptestConfig,
        manifest_dir: &str,
        source_file: &str,
        test_name: &str,
        f: F,
    ) where
        F: Fn(&mut TestRng) -> (String, std::thread::Result<Result<(), TestCaseError>>),
    {
        use rand::SeedableRng;
        let seeds = case_seeds(manifest_dir, source_file, test_name, &cfg);
        let total = seeds.len();
        for (i, seed) in seeds.into_iter().enumerate() {
            let mut rng = TestRng::seed_from_u64(seed);
            let (desc, outcome) = f(&mut rng);
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => panic!(
                    "[{test_name}] case {i}/{total} failed (seed {seed:#018x}): {msg}\n    \
                     inputs: {desc}"
                ),
                Err(payload) => {
                    eprintln!(
                        "[{test_name}] case {i}/{total} panicked (seed {seed:#018x})\n    \
                         inputs: {desc}"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::runner::{ProptestConfig, TestCaseError};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Module-style access (`prop::sample::Index` etc.).
        pub use crate::{collection, sample, strategy};
    }
}

/// Assert a condition inside a `proptest!` body (fails the case, with its
/// inputs reported, rather than panicking bare).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Choose between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm($weight as u32, $arm)),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $arm),+]
    };
}

/// Define property tests. Supports `#![proptest_config(expr)]`, doc
/// comments and attributes (including `#[test]`), and parameters in both
/// `name in strategy` and `name: Type` forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ [$crate::runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::run_cases(
                $cfg,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__rng| $crate::__proptest_bind!(__rng, $body, $($params)*),
            );
        }
        $crate::__proptest_items!{ [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    // Terminal: wrap the body, catching panics so inputs can be reported.
    ($rng:ident, $body:block $(,)?) => {{
        let __desc = ::std::string::String::new();
        $crate::__proptest_finish!(__desc, $body)
    }};
    // `name in strategy` binding.
    ($rng:ident, $body:block, $var:ident in $strat:expr, $($rest:tt)*) => {{
        let $var = $crate::strategy::Strategy::generate(&($strat), $rng);
        let mut __chunk = ::std::format!("{} = {:?}; ", stringify!($var), &$var);
        let (__tail_desc, __outcome) = $crate::__proptest_bind!($rng, $body, $($rest)*);
        __chunk.push_str(&__tail_desc);
        (__chunk, __outcome)
    }};
    ($rng:ident, $body:block, $var:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng, $body, $var in $strat,)
    };
    // `name: Type` binding (the whole-domain strategy for the type).
    ($rng:ident, $body:block, $var:ident : $ty:ty, $($rest:tt)*) => {{
        let $var: $ty = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        let mut __chunk = ::std::format!("{} = {:?}; ", stringify!($var), &$var);
        let (__tail_desc, __outcome) = $crate::__proptest_bind!($rng, $body, $($rest)*);
        __chunk.push_str(&__tail_desc);
        (__chunk, __outcome)
    }};
    ($rng:ident, $body:block, $var:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng, $body, $var: $ty,)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_finish {
    ($desc:ident, $body:block) => {{
        let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
            move || -> ::std::result::Result<(), $crate::runner::TestCaseError> {
                $body
                ::std::result::Result::Ok(())
            },
        ));
        ($desc, __outcome)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both binding forms, tuples, ranges, and collections.
        #[test]
        fn surface_smoke(
            seed: u64,
            flag: bool,
            small in 0u8..6,
            wide in 8usize..=32,
            frac in 0.25f64..0.75,
            pair in (any::<u16>(), 1u32..10),
            keys in crate::collection::vec(any::<u32>(), 1..20),
            set in crate::collection::hash_set(any::<u64>(), 2..9),
            pick in any::<crate::sample::Index>(),
        ) {
            let _ = seed;
            let _ = flag;
            prop_assert!(small < 6);
            prop_assert!((8..=32).contains(&wide));
            prop_assert!((0.25..0.75).contains(&frac));
            prop_assert!(pair.1 >= 1 && pair.1 < 10);
            prop_assert!(!keys.is_empty() && keys.len() < 20);
            prop_assert!(!set.is_empty());
            prop_assert!(pick.index(keys.len()) < keys.len());
            prop_assert_eq!(small as usize + 1, small as usize + 1, "ctx {}", small);
            prop_assert_ne!(wide, 0);
        }

        #[test]
        fn oneof_weighted_and_not(choice in sample_op(), n in 1u32..5) {
            let tag = match choice {
                Op::A(_) => 0,
                Op::B => 1,
            };
            prop_assert!(tag <= 1);
            prop_assert!(n >= 1);
        }
    }

    #[derive(Clone, Debug)]
    enum Op {
        A(u8),
        B,
    }

    fn sample_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u8..10).prop_map(Op::A),
            1 => (0u8..1).prop_map(|_| Op::B),
        ]
    }

    #[test]
    fn unweighted_oneof_parses() {
        use crate::runner::TestRng;
        use rand::SeedableRng;
        let s = prop_oneof![(0u8..3).prop_map(Op::A), (0u8..1).prop_map(|_| Op::B)];
        let mut rng = TestRng::seed_from_u64(1);
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Op::A(v) => {
                    assert!(v < 3);
                    saw_a = true;
                }
                Op::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }

    #[test]
    fn seeds_are_deterministic_and_absorb_regressions() {
        let cfg = ProptestConfig::with_cases(8);
        let a = crate::runner::case_seeds(env!("CARGO_MANIFEST_DIR"), file!(), "t", &cfg);
        let b = crate::runner::case_seeds(env!("CARGO_MANIFEST_DIR"), file!(), "t", &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8); // no regressions file for this source
        let other = crate::runner::case_seeds(env!("CARGO_MANIFEST_DIR"), file!(), "u", &cfg);
        assert_ne!(a, other);
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::runner::run_cases(
                ProptestConfig::with_cases(4),
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                "always_fails",
                |__rng| {
                    crate::__proptest_bind!(__rng, { prop_assert!(false, "boom"); }, x in 0u8..4,)
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("x = "), "{msg}");
    }
}
