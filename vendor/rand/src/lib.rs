//! Vendored, dependency-free stand-in for the subset of `rand` 0.8 this
//! workspace uses. The build environment has no registry access, so the
//! workspace pins these path crates instead of crates.io.
//!
//! Scope: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen_range` (integer and `f64` ranges, half-open and inclusive) and
//! `gen_bool`, plus [`rngs::SmallRng`] (xoshiro256++, the same family the
//! real `small_rng` feature ships on 64-bit targets).
//!
//! The samplers are statistically sound — `gen_range` uses Lemire's
//! widening-multiply rejection method for integers and a 53-bit mantissa
//! draw for floats — because the workload crate's distribution tests assert
//! sample moments over 100 K draws.

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array in real rand; mirrored here).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via SplitMix64 expansion (matches rand's
    /// documented behaviour of seeding the full state from a stream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod distributions {
    //! Just enough of `rand::distributions` for `gen_range`.

    pub mod uniform {
        //! Uniform range sampling.

        use crate::RngCore;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draw one sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Lemire's unbiased bounded sampler over `[0, span)`, `span >= 1`.
        fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span >= 1);
            // Widening multiply; reject the biased low zone.
            let zone = span.wrapping_neg() % span; // = 2^64 mod span
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (span as u128);
                if (m as u64) >= zone {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(bounded_u64(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            // Full-width range: every word is valid.
                            return lo.wrapping_add(rng.next_u64() as $t);
                        }
                        lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }

        impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // 53-bit draw over the closed unit interval.
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + u * (hi - lo)
            }
        }

        impl SampleRange<f32> for core::ops::Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
                let v = self.start + u * (self.end - self.start);
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
    /// Fast, 256-bit state, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_int_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v: usize = rng.gen_range(0..10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(8..=32);
            assert!((8..=32).contains(&v));
        }
    }

    #[test]
    fn gen_range_f64_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let v = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        let v = rng.gen_range(1.0f64..=1.0);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((8_500..11_500).contains(&hits), "p=0.1 gave {hits}/100000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
