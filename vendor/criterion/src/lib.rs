//! Vendored, dependency-free stand-in for the `criterion` 0.5 API subset
//! this workspace's benches use. The build environment has no registry
//! access, so the workspace pins these path crates instead of crates.io.
//!
//! It is a real (if simple) benchmark runner: each target is warmed up,
//! then timed over a fixed measurement window, and a mean-time-per-iteration
//! line is printed. Statistical machinery (outlier analysis, HTML reports)
//! is intentionally absent. Name filters passed on the command line are
//! honoured so `cargo bench -- cuckoo` works.

// The workspace clippy.toml bans wall-clock reads in the *model*; a
// benchmark runner is exactly the place they belong.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched iteration sizes its batches. All variants behave the same
/// here: one setup per timed batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (recorded, used to print a
/// rate next to the timing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    iters_done: u64,
    elapsed: Duration,
    measurement_time: Duration,
    warm_up_time: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let end = start + self.measurement_time;
        let mut iters = 0u64;
        while Instant::now() < end {
            // Amortise the clock read over a small burst.
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh un-timed `setup` product per batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let window_start = Instant::now();
        while window_start.elapsed() < self.measurement_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = timed;
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// End the group (explicit in the real API; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            filters,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; this runner is time-budgeted, so the
    /// sample count only scales the measurement window slightly.
    pub fn sample_size(mut self, n: usize) -> Self {
        let n = n.max(10) as u64;
        self.measurement_time = Duration::from_millis(250 + 10 * n);
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id, None, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|flt| id.contains(flt.as_str())) {
            return;
        }
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        if b.iters_done == 0 {
            println!("{id:<40} (no iterations recorded)");
            return;
        }
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * 1e9 / ns_per_iter;
                format!("  {:>12.0} elem/s", per_sec)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * 1e9 / ns_per_iter;
                format!("  {:>12.0} B/s", per_sec)
            }
            None => String::new(),
        };
        println!(
            "{id:<40} {:>12.1} ns/iter ({} iters){rate}",
            ns_per_iter, b.iters_done
        );
    }
}

/// Define a benchmark group entry point, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        c.filters.clear();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.filters.clear();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1));
        let mut total = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || 7u64,
                |x| {
                    total += x;
                    black_box(total)
                },
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert!(total > 0);
    }

    #[test]
    fn filters_skip_unmatched() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filters = vec!["only-this".to_string()];
        let mut ran = false;
        c.bench_function("something-else", |b| {
            ran = true;
            b.iter(|| black_box(1));
        });
        assert!(!ran);
    }
}
