//! Cross-crate end-to-end PCC behaviour: every system, one trace family.
//!
//! These are the repository's headline invariants:
//! * SilkRoad and SLB never break a connection;
//! * Duet's violations depend on its migrate-back policy;
//! * stateless ECMP is strictly worst;
//! * removing the TransitTable re-introduces (few) violations.

use silkroad::SilkRoadConfig;
use sr_baselines::{DuetConfig, MigrationPolicy, SlbConfig};
use sr_sim::adapters::{DuetAdapter, EcmpAdapter, SilkRoadAdapter, SlbAdapter};
use sr_sim::{Harness, HarnessConfig, RunMetrics};
use sr_types::{AddrFamily, Duration};
use sr_workload::TraceConfig;

fn trace(updates_per_min: f64, median_flow_secs: f64, seed: u64) -> TraceConfig {
    TraceConfig {
        vips: 12,
        dips_per_vip: 8,
        new_conns_per_min: 4_000.0,
        median_flow_secs,
        flow_sigma: 1.0,
        median_rate_bps: 200_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(12),
        family: AddrFamily::V4,
        seed,
    }
}

fn run_silkroad(t: TraceConfig) -> RunMetrics {
    let cfg = SilkRoadConfig {
        conn_capacity: 100_000,
        ..Default::default()
    };
    let mut lb = SilkRoadAdapter::new(cfg);
    Harness::new(t, HarnessConfig::default()).run(&mut lb)
}

/// SilkRoad's only residual breakage mechanism is a digest false positive
/// on a data packet (a later-installed connection shadowing an existing
/// digest in an earlier pipeline stage). The paper measures the digest
/// false-positive rate at 0.01% of connections; hold SilkRoad to well
/// under that.
const DIGEST_FP_BUDGET: f64 = 1e-4;

#[test]
fn silkroad_pcc_holds_for_short_flows() {
    let m = run_silkroad(trace(30.0, 10.0, 1));
    assert!(m.conns_total > 10_000, "{m}");
    assert!(m.violation_fraction() <= DIGEST_FP_BUDGET, "{m}");
}

#[test]
fn silkroad_pcc_holds_for_cache_flows() {
    // §3.2: longer flows mean more old connections at any instant — the
    // regime where Duet collapses but SilkRoad must still be exact.
    let m = run_silkroad(trace(30.0, 270.0, 2));
    assert!(m.violation_fraction() <= DIGEST_FP_BUDGET, "{m}");
}

#[test]
fn duet_long_flows_violate_more_than_short() {
    let run = |median_flow| {
        let mut lb = DuetAdapter::new(DuetConfig {
            policy: MigrationPolicy::Periodic(Duration::from_mins(1)),
            seed: 5,
        });
        Harness::new(trace(30.0, median_flow, 3), HarnessConfig::default()).run(&mut lb)
    };
    let short = run(10.0);
    let long = run(270.0);
    assert!(short.pcc_violations > 0, "{short}");
    assert!(
        long.violation_fraction() > short.violation_fraction(),
        "long {long} vs short {short}"
    );
}

#[test]
fn system_ordering_on_violations() {
    let t = trace(30.0, 30.0, 7);
    let silkroad = run_silkroad(t);
    let slb = {
        let mut lb = SlbAdapter::new(SlbConfig::default());
        Harness::new(t, HarnessConfig::default()).run(&mut lb)
    };
    let duet = {
        let mut lb = DuetAdapter::new(DuetConfig {
            policy: MigrationPolicy::Periodic(Duration::from_mins(1)),
            seed: 5,
        });
        Harness::new(t, HarnessConfig::default()).run(&mut lb)
    };
    let ecmp = {
        let mut lb = EcmpAdapter::new(5);
        Harness::new(t, HarnessConfig::default()).run(&mut lb)
    };
    assert!(
        silkroad.violation_fraction() <= DIGEST_FP_BUDGET,
        "{silkroad}"
    );
    assert_eq!(slb.pcc_violations, 0, "{slb}");
    assert!(
        duet.pcc_violations > silkroad.pcc_violations.max(1) * 10,
        "duet {duet} vs silkroad {silkroad}"
    );
    assert!(
        ecmp.violation_fraction() > duet.violation_fraction(),
        "ecmp {ecmp} vs duet {duet}"
    );
}

#[test]
fn software_load_ordering() {
    let t = trace(20.0, 30.0, 9);
    let silkroad = run_silkroad(t);
    let slb = {
        let mut lb = SlbAdapter::new(SlbConfig::default());
        Harness::new(t, HarnessConfig::default()).run(&mut lb)
    };
    let duet = {
        let mut lb = DuetAdapter::new(DuetConfig {
            policy: MigrationPolicy::Periodic(Duration::from_mins(10)),
            seed: 5,
        });
        Harness::new(t, HarnessConfig::default()).run(&mut lb)
    };
    // SilkRoad keeps (essentially) everything in hardware; Duet is in
    // between; a pure SLB tier handles 100%.
    assert!(silkroad.software_traffic_fraction() < 0.01, "{silkroad}");
    assert!(
        duet.software_traffic_fraction() > silkroad.software_traffic_fraction(),
        "{duet}"
    );
    assert!(slb.software_traffic_fraction() > 0.99, "{slb}");
}

#[test]
fn no_transit_table_reintroduces_violations_under_stress() {
    // Slow the CPU so pending windows stretch; without the TransitTable the
    // update flips immediately and pending connections re-hash.
    let mut cfg = SilkRoadConfig {
        conn_capacity: 100_000,
        transit_enabled: false,
        ..Default::default()
    };
    cfg.cpu.insertions_per_sec = 2_000;
    cfg.learning.timeout = Duration::from_millis(5);
    let mut no_tt = SilkRoadAdapter::new(cfg.clone());
    let mut t = trace(50.0, 30.0, 11);
    t.median_rate_bps = 2_000_000.0; // chatty flows: packets in the window
    let m_no_tt = Harness::new(t, HarnessConfig::default()).run(&mut no_tt);

    let mut cfg_tt = cfg;
    cfg_tt.transit_enabled = true;
    let mut with_tt = SilkRoadAdapter::new(cfg_tt);
    let m_tt = Harness::new(t, HarnessConfig::default()).run(&mut with_tt);

    assert!(
        m_tt.violation_fraction() <= DIGEST_FP_BUDGET,
        "with TT: {m_tt}"
    );
    assert!(
        m_no_tt.pcc_violations > 0,
        "expected the ablation to break some connections: {m_no_tt}"
    );
}
