//! Property tests: the batched connection-setup pipeline is
//! observationally identical to the per-packet legacy pipeline.
//!
//! The churn benchmark's speedup claim only means anything if the two
//! arms are the *same machine* at different speeds. These properties
//! drive randomized workloads — SYN storms with duplicated handshakes,
//! interleaved data and early closes, and pool updates landing mid-burst
//! while setups are in flight — through both arms and require:
//!
//! 1. **Decision identity**: every packet's [`ForwardDecision`] (DIP,
//!    path, version, hit provenance) matches exactly, in order.
//! 2. **State identity**: after the pipelines drain, both switches hold
//!    the same connection count and resolve every flow — including flows
//!    that never completed setup — to the same decision.
//!
//! Both address families and 1/2-pipe steering are covered; chunk-size
//! effects (the fused `SETUP_CHUNK` fast path, in-chunk dedup) are
//! exercised by varying the batch length across cases.

use proptest::prelude::*;
use silkroad::{ForwardDecision, MultiPipeSwitch, PoolUpdate, SilkRoadConfig};
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};

fn dip(i: u8, v6: bool) -> Dip {
    if v6 {
        Dip(Addr::v6_indexed(0x0d1b, u32::from(i), 20))
    } else {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }
}

fn vip_addr(v6: bool) -> Addr {
    if v6 {
        Addr::v6_indexed(0x0a0a, 1, 443)
    } else {
        Addr::v4(20, 0, 0, 1, 80)
    }
}

fn flow(i: u32, v6: bool) -> FiveTuple {
    let client = if v6 {
        Addr::v6_indexed(0xc11e, i, 1024)
    } else {
        Addr::v4_indexed(100, i, 1024)
    };
    FiveTuple::tcp(client, vip_addr(v6))
}

/// One wave of the randomized workload.
#[derive(Clone, Debug)]
struct WaveSpec {
    /// Brand-new flows opened this wave.
    new_flows: u32,
    /// SYN retransmissions: every new flow's handshake is replayed this
    /// many times within the burst (the churn storm knob).
    storm: u32,
    /// Data packets for flows from earlier waves (witness traffic).
    data_prev: u32,
    /// Early FINs for flows from earlier waves (exercises the
    /// closed-early path racing the install pipeline).
    fins_prev: u32,
    /// Pool update requested mid-burst: `Some(true)` adds the spare DIP,
    /// `Some(false)` removes it (only honoured when it is present).
    update: Option<bool>,
}

#[derive(Clone, Debug)]
struct Scenario {
    v6: bool,
    pipes: usize,
    /// Data-plane batch length for the batched arm (spans chunk-boundary
    /// and partial-chunk shapes around `SETUP_CHUNK`).
    batch: usize,
    waves: Vec<WaveSpec>,
}

fn wave_spec() -> impl Strategy<Value = WaveSpec> {
    (
        1u32..48,
        1u32..5,
        0u32..24,
        0u32..6,
        prop_oneof![
            3 => Just(None),
            1 => Just(Some(true)),
            1 => Just(Some(false)),
        ],
    )
        .prop_map(
            |(new_flows, storm, data_prev, fins_prev, update)| WaveSpec {
                new_flows,
                storm,
                data_prev,
                fins_prev,
                update,
            },
        )
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<bool>(),
        prop_oneof![Just(1usize), Just(2usize)],
        7usize..80,
        proptest::collection::vec(wave_spec(), 2..5),
    )
        .prop_map(|(v6, pipes, batch, waves)| Scenario {
            v6,
            pipes,
            batch,
            waves,
        })
}

/// Drive one arm over the scenario and return (decisions, final per-flow
/// decisions, conn_count).
fn run_arm(s: &Scenario, legacy: bool) -> (Vec<ForwardDecision>, Vec<ForwardDecision>, usize) {
    let total: u32 = s.waves.iter().map(|w| w.new_flows).sum();
    let cfg = SilkRoadConfig {
        conn_capacity: (total as usize).max(64) * 4,
        digest_bits: 24,
        legacy_setup: legacy,
        ..Default::default()
    };
    let mut sw = MultiPipeSwitch::inline(cfg, s.pipes);
    sw.add_vip(Vip(vip_addr(s.v6)), (1..=8).map(|i| dip(i, s.v6)).collect())
        .unwrap();

    let mut decisions = Vec::new();
    let mut out: Vec<ForwardDecision> = Vec::new();
    let mut process = |sw: &mut MultiPipeSwitch, pkts: &[PacketMeta], now: Nanos| {
        if legacy {
            for p in pkts {
                decisions.push(sw.process_packet(p, now));
            }
        } else {
            for chunk in pkts.chunks(s.batch) {
                out.clear();
                sw.process_batch_into(chunk, now, &mut out);
                decisions.extend_from_slice(&out);
            }
        }
    };

    let mut opened = 0u32;
    let mut spare_in_pool = false;
    let mut now = Nanos::ZERO;
    // Generous per-wave drain: filter notification + CPU time for the
    // whole cohort.
    let drain = Duration::from_millis(2) + Duration::from_micros(5 * u64::from(total));
    for w in &s.waves {
        let prev = opened;
        // Burst layout (identical for both arms): storm-replicated SYNs
        // round-major (retransmits land in later chunks), then witness
        // data, then early FINs.
        let mut burst: Vec<PacketMeta> = Vec::new();
        for _round in 0..w.storm {
            for i in 0..w.new_flows {
                burst.push(PacketMeta::syn(flow(prev + i, s.v6)));
            }
        }
        for i in 0..w.data_prev.min(prev) {
            burst.push(PacketMeta::data(flow(i % prev.max(1), s.v6), 400));
        }
        for i in 0..w.fins_prev.min(prev) {
            burst.push(PacketMeta::fin(flow(i % prev.max(1), s.v6)));
        }
        opened += w.new_flows;

        // The update lands after one batch of the burst, so part of the
        // cohort is pending when the 3-step protocol opens its window —
        // both arms see the identical packet/update interleaving because
        // the split sits on a batch boundary.
        let update = match w.update {
            Some(true) if !spare_in_pool => {
                spare_in_pool = true;
                Some(PoolUpdate::Add(dip(9, s.v6)))
            }
            Some(false) if spare_in_pool => {
                spare_in_pool = false;
                Some(PoolUpdate::Remove(dip(9, s.v6)))
            }
            _ => None,
        };
        let split = if update.is_some() {
            s.batch.min(burst.len())
        } else {
            0
        };
        process(&mut sw, &burst[..split], now);
        if let Some(op) = update {
            let _ = sw.request_update(Vip(vip_addr(s.v6)), op, now);
        }
        process(&mut sw, &burst[split..], now);
        now += drain;
        sw.advance(now);
        now += Duration::from_millis(1);
    }

    // Final state probe: every flow ever opened resolves through the
    // drained switch.
    let probe: Vec<PacketMeta> = (0..opened)
        .map(|i| PacketMeta::data(flow(i, s.v6), 800))
        .collect();
    out.clear();
    let mut finals = Vec::with_capacity(probe.len());
    for p in &probe {
        finals.push(sw.process_packet(p, now));
    }
    (decisions, finals, sw.conn_count())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched and legacy arms produce identical decision streams and
    /// identical post-drain state over randomized churn workloads.
    #[test]
    fn batched_setup_matches_per_packet(s in scenario()) {
        let (bat_dec, bat_fin, bat_conns) = run_arm(&s, false);
        let (leg_dec, leg_fin, leg_conns) = run_arm(&s, true);
        prop_assert_eq!(bat_dec.len(), leg_dec.len());
        for (i, (b, l)) in bat_dec.iter().zip(&leg_dec).enumerate() {
            prop_assert_eq!(b, l, "decision {} diverged (batch {})", i, s.batch);
        }
        prop_assert_eq!(bat_conns, leg_conns, "connection counts diverged");
        for (i, (b, l)) in bat_fin.iter().zip(&leg_fin).enumerate() {
            prop_assert_eq!(b, l, "post-drain resolution diverged for flow {}", i);
        }
    }
}
