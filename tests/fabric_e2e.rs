//! End-to-end fabric test: trace-driven traffic over a Clos of SilkRoad
//! switches, with fabric-wide updates and a mid-run switch failure.

use silkroad::{PoolUpdate, SilkRoadConfig};
use sr_netwide::{Layer, SilkRoadFabric, Topology};
use sr_types::{Dip, Duration, Nanos, PacketMeta, SwitchId};
use sr_workload::trace::{dip_addr, vip_addr};
use sr_workload::updates::DipOp;
use sr_workload::{TraceConfig, TraceEvent, TraceIter};
use std::collections::{HashMap, HashSet};

fn trace() -> TraceConfig {
    TraceConfig {
        vips: 6,
        dips_per_vip: 8,
        new_conns_per_min: 6_000.0,
        median_flow_secs: 30.0,
        flow_sigma: 0.8,
        median_rate_bps: 200_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min: 10.0,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(4),
        family: sr_types::AddrFamily::V4,
        seed: 77,
    }
}

#[test]
fn fabric_under_trace_updates_and_failure() {
    let cfg = trace();
    let topo = Topology::clos(6, 3, 2, 50 << 20, 6400.0);
    let silk_cfg = SilkRoadConfig {
        conn_capacity: 50_000,
        ..Default::default()
    };
    let mut fabric = SilkRoadFabric::new(&topo, &silk_cfg);

    // Spread VIPs over layers like the §5.3 assignment would.
    let mut membership: Vec<HashSet<u32>> = Vec::new();
    for v in 0..cfg.vips {
        let layer = match v % 3 {
            0 => Layer::ToR,
            1 => Layer::Agg,
            _ => Layer::Core,
        };
        let dips: Vec<Dip> = (0..cfg.dips_per_vip)
            .map(|d| dip_addr(cfg.family, v, d))
            .collect();
        fabric
            .assign_vip(vip_addr(cfg.family, v), dips, layer)
            .unwrap();
        membership.push((0..cfg.dips_per_vip).collect());
    }

    // conn seq -> (tuple, first dip, doomed)
    let mut assigned: HashMap<u64, (sr_types::FiveTuple, Dip, bool)> = HashMap::new();
    let mut removed_dips: HashSet<Dip> = HashSet::new();
    let mut failed: Option<SwitchId> = None;
    let mut owner: HashMap<u64, SwitchId> = HashMap::new();
    let half = Nanos::ZERO + Duration::from_mins(2);
    let mut violations = 0u64;
    let mut checked = 0u64;

    for ev in TraceIter::new(cfg) {
        let now = ev.at();
        // Fail one switch at half time.
        if failed.is_none() && now >= half {
            let victim = fabric.switch_for(&assigned.values().next().unwrap().0);
            let victim = victim.expect("some flow placed");
            assert!(fabric.fail_switch(victim));
            failed = Some(victim);
        }
        match ev {
            TraceEvent::ConnOpen(c) => {
                if let Some((id, d)) = fabric.process_packet(&PacketMeta::syn(c.tuple), now) {
                    if let Some(dip) = d.dip {
                        let doomed = removed_dips.contains(&dip);
                        assigned.insert(c.seq.0, (c.tuple, dip, doomed));
                        owner.insert(c.seq.0, id);
                    }
                }
            }
            TraceEvent::Update(u) => {
                // Keep pools non-empty and effective (mirrors the harness).
                let members = &mut membership[u.vip.0 as usize];
                let effective = match u.op {
                    DipOp::Remove => members.len() > 1 && members.remove(&u.dip.0),
                    DipOp::Add => members.insert(u.dip.0),
                };
                if !effective {
                    continue;
                }
                let dip = dip_addr(cfg.family, u.vip.0, u.dip.0);
                let op = match u.op {
                    DipOp::Remove => {
                        removed_dips.insert(dip);
                        PoolUpdate::Remove(dip)
                    }
                    DipOp::Add => {
                        removed_dips.remove(&dip);
                        PoolUpdate::Add(dip)
                    }
                };
                fabric
                    .request_update(vip_addr(cfg.family, u.vip.0), op, now)
                    .unwrap();
                if let PoolUpdate::Remove(d) = op {
                    for (_, (_, a, doomed)) in assigned.iter_mut() {
                        if *a == d {
                            *doomed = true;
                        }
                    }
                }
            }
        }
        // Periodically re-probe a sample of live connections.
        if assigned.len().is_multiple_of(97) {
            fabric.advance(now);
            for (seq, (tuple, first, doomed)) in assigned.iter() {
                if *doomed || seq % 13 != 0 {
                    continue;
                }
                // Connections that lived on the failed switch with an old
                // version are legitimate §7 casualties — skip those that
                // were on the victim.
                if failed.is_some() && owner.get(seq) == failed.as_ref() {
                    continue;
                }
                if let Some((_, d)) = fabric.process_packet(&PacketMeta::data(*tuple, 800), now) {
                    checked += 1;
                    if let Some(dip) = d.dip {
                        if dip != *first {
                            violations += 1;
                        }
                    }
                }
            }
        }
    }

    assert!(
        assigned.len() > 10_000,
        "too few connections: {}",
        assigned.len()
    );
    assert!(checked > 5_000, "too few checks: {checked}");
    assert_eq!(
        violations, 0,
        "fabric broke {violations} of {checked} checked connections"
    );
    assert_eq!(fabric.failures, 1);
    assert_eq!(fabric.live_switches(), 10);
}
