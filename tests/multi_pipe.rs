//! Decision-equivalence: the sharded [`MultiPipeSwitch`] must forward
//! every flow exactly as a single [`SilkRoadSwitch`] built from the same
//! configuration — same DIP, same path, same version — including across
//! a DIP-pool update, where per-connection consistency (PCC) must hold
//! in every pipe.
//!
//! Both switches share one seed, so every hash family (digest, bucket,
//! select, bloom, steering) is identical; the digest is widened to 24
//! bits and the transit bloom to 4 KB so collision/false-positive
//! geometry — the only place shard-local table sizes could diverge from
//! the monolithic switch — is driven to zero for these populations.

use silkroad::{
    DataPath, ForwardDecision, MultiPipeSwitch, PoolUpdate, SilkRoadConfig, SilkRoadSwitch,
    UpdatePhase,
};
use sr_types::{Addr, Dip, FiveTuple, Nanos, PacketMeta, Vip};

const PIPES: usize = 4;
const N_EST: u32 = 512;
const N_PEND: u32 = 128;

fn cfg() -> SilkRoadConfig {
    SilkRoadConfig {
        conn_capacity: 8_192,
        digest_bits: 24,
        transit_bytes: 4_096,
        ..Default::default()
    }
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn dips() -> Vec<Dip> {
    (1..=8).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
}

fn conn(i: u32) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(100, i, 1024 + (i % 7) as u16), vip().0)
}

/// Run one batch through both switches and assert the decision streams
/// are bit-identical (DIP, path, version, hit flags — `ForwardDecision`
/// is `Eq`).
fn lockstep(
    multi: &mut MultiPipeSwitch,
    single: &mut SilkRoadSwitch,
    pkts: &[PacketMeta],
    now: Nanos,
    label: &str,
) -> Vec<ForwardDecision> {
    let m = multi.process_batch(pkts, now);
    let s = single.process_batch(pkts, now);
    for (i, (dm, ds)) in m.iter().zip(s.iter()).enumerate() {
        assert_eq!(dm, ds, "{label}: packet {i} diverged");
    }
    m
}

#[test]
fn multi_pipe_decisions_match_single_pipe_across_update() {
    let mut multi = MultiPipeSwitch::inline(cfg(), PIPES);
    let mut single = SilkRoadSwitch::new(cfg());
    multi.add_vip(vip(), dips()).unwrap();
    single.add_vip(vip(), dips()).unwrap();

    // Phase 1 — establish: first packets take identical miss paths.
    let syns: Vec<PacketMeta> = (0..N_EST).map(|i| PacketMeta::syn(conn(i))).collect();
    lockstep(&mut multi, &mut single, &syns, Nanos::ZERO, "establish");

    // Phase 2 — steady state: every flow resolves via ConnTable in both.
    let t1 = Nanos::from_secs(1);
    multi.advance(t1);
    single.advance(t1);
    assert_eq!(multi.conn_count(), N_EST as usize);
    assert_eq!(single.conn_count(), N_EST as usize);
    let data: Vec<PacketMeta> = (0..N_EST).map(|i| PacketMeta::data(conn(i), 800)).collect();
    let before = lockstep(&mut multi, &mut single, &data, t1, "steady state");
    assert!(before.iter().all(|d| d.path == DataPath::AsicConnTable));

    // Phase 3 — new flows go pending, then a DIP is removed while they
    // are still in transit (the PCC-hazard window of §4.3).
    let t2 = Nanos::from_secs(2);
    let pend_syns: Vec<PacketMeta> = (N_EST..N_EST + N_PEND)
        .map(|i| PacketMeta::syn(conn(i)))
        .collect();
    let pend_first = lockstep(&mut multi, &mut single, &pend_syns, t2, "pending SYNs");
    let victim = before[0].dip.expect("established flow has a DIP");
    multi
        .request_update(vip(), PoolUpdate::Remove(victim), t2)
        .unwrap();
    single
        .request_update(vip(), PoolUpdate::Remove(victim), t2)
        .unwrap();

    // Mid-window traffic (no time has passed: installs and update steps
    // are still in flight in both switches).
    let window: Vec<PacketMeta> = (0..N_EST + N_PEND)
        .map(|i| PacketMeta::data(conn(i), 800))
        .collect();
    let during = lockstep(&mut multi, &mut single, &window, t2, "update window");
    // PCC during the window: established flows keep their DIP, pending
    // flows keep the DIP their first packet chose.
    for (i, d) in during.iter().take(N_EST as usize).enumerate() {
        assert_eq!(
            d.dip, before[i].dip,
            "established flow {i} remapped mid-update"
        );
    }
    for (i, d) in during.iter().skip(N_EST as usize).enumerate() {
        assert_eq!(
            d.dip, pend_first[i].dip,
            "pending flow {i} remapped mid-update"
        );
    }

    // Phase 4 — update completes everywhere.
    let t3 = Nanos::from_secs(4);
    multi.advance(t3);
    single.advance(t3);
    assert_eq!(multi.update_phase(vip()), Some(UpdatePhase::Idle));
    assert_eq!(single.update_phase(vip()), Some(UpdatePhase::Idle));
    assert!(!multi.current_dips(vip()).unwrap().contains(&victim));
    assert!(!single.current_dips(vip()).unwrap().contains(&victim));

    let after = lockstep(&mut multi, &mut single, &window, t3, "post-update");
    // PCC after the update: every pre-update flow still maps where it
    // started — including flows whose DIP was removed (version pinning).
    for (i, d) in after.iter().take(N_EST as usize).enumerate() {
        assert_eq!(
            d.dip, before[i].dip,
            "established flow {i} remapped by update"
        );
    }
    for (i, d) in after.iter().skip(N_EST as usize).enumerate() {
        assert_eq!(
            d.dip, pend_first[i].dip,
            "pending flow {i} remapped by update"
        );
    }
    assert!(
        after.iter().any(|d| d.dip == Some(victim)),
        "expected at least one flow pinned to the removed DIP"
    );

    // Phase 5 — flows that start after the update avoid the removed DIP,
    // identically in both switches.
    let fresh: Vec<PacketMeta> = (N_EST + N_PEND..N_EST + N_PEND + 128)
        .map(|i| PacketMeta::syn(conn(i)))
        .collect();
    let new_decisions = lockstep(&mut multi, &mut single, &fresh, t3, "post-update SYNs");
    assert!(new_decisions.iter().all(|d| d.dip != Some(victim)));

    // The aggregate counters agree with the monolithic switch on
    // everything flow-driven (packets, hits, learns, installs).
    let (ms, ss) = (multi.stats(), single.stats());
    assert_eq!(ms.packets, ss.packets);
    assert_eq!(ms.conn_table_hits, ss.conn_table_hits);
    assert_eq!(ms.learns, ss.learns);
    assert_eq!(ms.installs, ss.installs);
}

#[test]
fn multi_pipe_close_and_expiry_stay_in_lockstep() {
    let mut multi = MultiPipeSwitch::inline(cfg(), PIPES);
    let mut single = SilkRoadSwitch::new(cfg());
    multi.add_vip(vip(), dips()).unwrap();
    single.add_vip(vip(), dips()).unwrap();

    let syns: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::syn(conn(i))).collect();
    lockstep(&mut multi, &mut single, &syns, Nanos::ZERO, "establish");
    let t1 = Nanos::from_secs(1);
    multi.advance(t1);
    single.advance(t1);

    // Close half the flows explicitly; both sides drop the same entries.
    for i in 0..128u32 {
        multi.close_connection(&conn(i), t1);
        single.close_connection(&conn(i), t1);
    }
    assert_eq!(multi.conn_count(), single.conn_count());

    // Idle-expire the rest. The aging scan is two-pass (a scan expires
    // entries installed before the *previous* scan and not hit since), so
    // run two scans; per-scan totals and final state must agree.
    let first = (
        multi.expire_idle(Nanos::from_secs(300)),
        single.expire_idle(Nanos::from_secs(300)),
    );
    assert_eq!(first.0, first.1);
    let second = (
        multi.expire_idle(Nanos::from_secs(600)),
        single.expire_idle(Nanos::from_secs(600)),
    );
    assert_eq!(second.0, second.1);
    assert_eq!(first.0 + second.0, 128, "all idle flows expired");
    assert_eq!(multi.conn_count(), 0);
    assert_eq!(single.conn_count(), 0);
}

/// Regression (engine v2): idle-expiry ticks landing *between* batches
/// must not diverge decisions across pipe counts or backends. Expiry is
/// a published control op adopted at batch boundaries, so a flow whose
/// entry expired must take the same re-install path (and re-select the
/// same DIP) no matter how many pipes — or worker threads — the chip
/// runs. The monolithic switch is the oracle.
#[test]
fn expiry_between_batches_cannot_diverge_decisions_across_pipe_counts() {
    const N: u32 = 192;

    /// One step of the interleaved traffic/expiry scenario.
    enum Cmd<'a> {
        Batch(&'a [PacketMeta], Nanos),
        Advance(Nanos),
        Expire(Nanos),
    }

    let syns: Vec<PacketMeta> = (0..N).map(|i| PacketMeta::syn(conn(i))).collect();
    let data: Vec<PacketMeta> = (0..N).map(|i| PacketMeta::data(conn(i), 800)).collect();
    let keepalive: Vec<PacketMeta> = (0..N / 2).map(|i| PacketMeta::data(conn(i), 80)).collect();
    // Establish, keep the first half warm across two aging scans (so the
    // scans expire exactly the idle second half, *between* data batches),
    // then send full-population data: expired flows re-learn, warm flows
    // hit ConnTable.
    let script = [
        Cmd::Batch(&syns, Nanos::ZERO),
        Cmd::Advance(Nanos::from_secs(1)),
        Cmd::Batch(&keepalive, Nanos::from_secs(200)),
        Cmd::Expire(Nanos::from_secs(300)),
        Cmd::Batch(&keepalive, Nanos::from_secs(400)),
        Cmd::Expire(Nanos::from_secs(600)),
        Cmd::Batch(&data, Nanos::from_secs(601)),
        Cmd::Advance(Nanos::from_secs(602)),
        Cmd::Batch(&data, Nanos::from_secs(603)),
    ];

    fn run(
        script: &[Cmd<'_>],
        mut step: impl FnMut(&Cmd<'_>) -> (Vec<ForwardDecision>, usize),
    ) -> (Vec<ForwardDecision>, usize) {
        let mut decisions = Vec::new();
        let mut expired = 0;
        for cmd in script {
            let (d, e) = step(cmd);
            decisions.extend(d);
            expired += e;
        }
        (decisions, expired)
    }

    let mut single = SilkRoadSwitch::new(cfg());
    single.add_vip(vip(), dips()).unwrap();
    let (oracle, oracle_expired) = run(&script, |cmd| match cmd {
        Cmd::Batch(p, t) => (single.process_batch(p, *t), 0),
        Cmd::Advance(t) => {
            single.advance(*t);
            (Vec::new(), 0)
        }
        Cmd::Expire(t) => (Vec::new(), single.expire_idle(*t)),
    });
    assert!(oracle_expired > 0, "scenario must actually expire flows");

    for pipes in [1usize, 2, 4] {
        for threaded in [false, true] {
            let mut multi = if threaded {
                MultiPipeSwitch::new(cfg(), pipes)
            } else {
                MultiPipeSwitch::inline(cfg(), pipes)
            };
            multi.add_vip(vip(), dips()).unwrap();
            let (got, got_expired) = run(&script, |cmd| match cmd {
                Cmd::Batch(p, t) => (multi.process_batch(p, *t), 0),
                Cmd::Advance(t) => {
                    multi.advance(*t);
                    (Vec::new(), 0)
                }
                Cmd::Expire(t) => (Vec::new(), multi.expire_idle(*t)),
            });
            assert_eq!(
                got_expired, oracle_expired,
                "expiry count diverged (pipes={pipes} threaded={threaded})"
            );
            assert_eq!(
                got, oracle,
                "decisions diverged (pipes={pipes} threaded={threaded})"
            );
        }
    }
}
