//! Integration tests of the 3-step update protocol and the switch's less
//! common paths: update queueing under churn, version-ring exhaustion with
//! fallback migration, ConnTable overflow, hybrid mode, and the direct-DIP
//! mapping.

use silkroad::{ConnMapping, PoolUpdate, SilkRoadConfig, SilkRoadSwitch, UpdatePhase};
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn dip(i: u8) -> Dip {
    Dip(Addr::v4(10, 0, 0, i, 20))
}

fn conn(i: u32) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(1, i, 30_000), Addr::v4(20, 0, 0, 1, 80))
}

fn switch_with(cfg: SilkRoadConfig, dips: u8) -> SilkRoadSwitch {
    let mut sw = SilkRoadSwitch::new(cfg);
    sw.add_vip(vip(), (1..=dips).map(dip).collect()).unwrap();
    sw
}

#[test]
fn update_storm_queues_and_completes() {
    let mut sw = switch_with(SilkRoadConfig::small_test(), 8);
    let mut t = Nanos::ZERO;
    // Continuous traffic keeps connections pending across every update;
    // each burst issues a remove immediately followed by the re-add, so
    // the add always queues behind the in-flight remove.
    for i in 0..400u32 {
        sw.process_packet(&PacketMeta::syn(conn(i)), t);
        if i % 20 == 10 {
            let d = dip(1 + ((i / 20) % 7) as u8);
            sw.request_update(vip(), PoolUpdate::Remove(d), t).unwrap();
            sw.request_update(vip(), PoolUpdate::Add(d), t).unwrap();
        }
        t += Duration::from_micros(200);
    }
    t += Duration::from_secs(1);
    sw.advance(t);
    assert_eq!(sw.update_phase(vip()), Some(UpdatePhase::Idle));
    let s = sw.stats();
    assert_eq!(
        s.updates_completed + s.updates_noop,
        s.updates_requested,
        "every request must terminate: {s}"
    );
    assert!(s.updates_queued > 0, "storm should have queued: {s}");
    // The pool never went empty and traffic still flows.
    let d = sw.process_packet(&PacketMeta::syn(conn(100_000)), t);
    assert!(d.dip.is_some());
}

#[test]
fn version_exhaustion_falls_back() {
    let mut cfg = SilkRoadConfig::small_test();
    cfg.version_bits = 2; // ring of 4
    cfg.version_reuse = false; // force allocation pressure
    let mut sw = switch_with(cfg, 4);
    let mut t = Nanos::ZERO;
    // Each round: connections pin the current version, then an update.
    for round in 0..12u32 {
        for i in 0..20 {
            sw.process_packet(&PacketMeta::syn(conn(round * 100 + i)), t);
        }
        t += Duration::from_millis(20);
        sw.advance(t);
        let d = dip(1 + (round % 3) as u8);
        let op = if round % 2 == 0 {
            PoolUpdate::Remove(d)
        } else {
            PoolUpdate::Add(d)
        };
        sw.request_update(vip(), op, t).unwrap();
        t += Duration::from_millis(20);
        sw.advance(t);
    }
    let s = sw.stats();
    assert!(
        s.version_exhaustions > 0,
        "a 4-version ring without reuse must exhaust: {s}"
    );
    assert!(s.exhaustion_migrations > 0, "{s}");
    // Migrated connections still resolve via the fallback table.
    let probe = conn(5); // round 0 connection
    let d = sw.process_packet(&PacketMeta::data(probe, 100), t);
    assert!(d.dip.is_some(), "fallback lost the connection");
}

#[test]
fn conn_table_overflow_spills_to_software() {
    let mut cfg = SilkRoadConfig::small_test();
    cfg.conn_capacity = 64; // tiny table
    let mut sw = switch_with(cfg, 4);
    let mut t = Nanos::ZERO;
    for i in 0..600u32 {
        sw.process_packet(&PacketMeta::syn(conn(i)), t);
        t += Duration::from_micros(100);
    }
    t += Duration::from_secs(1);
    sw.advance(t);
    let s = sw.stats();
    assert!(s.conn_table_overflows > 0, "{s}");
    assert_eq!(s.fallback_entries as usize, sw_fallback_len(&sw, s));
    // Overflowed connections still map consistently.
    let d1 = sw.process_packet(&PacketMeta::data(conn(599), 100), t);
    let d2 = sw.process_packet(&PacketMeta::data(conn(599), 100), t);
    assert_eq!(d1.dip, d2.dip);
    assert!(d1.dip.is_some());
}

fn sw_fallback_len(_sw: &SilkRoadSwitch, s: &silkroad::SwitchStats) -> usize {
    // fallback_entries is maintained as a counter; cross-check is indirect
    // (the field is private), so just sanity-bound it here.
    s.fallback_entries as usize
}

#[test]
fn direct_dip_mode_full_protocol() {
    let mut cfg = SilkRoadConfig::small_test();
    cfg.mapping = ConnMapping::DirectDip;
    let mut sw = switch_with(cfg, 4);
    let mut t = Nanos::ZERO;
    let mut assigned = Vec::new();
    for i in 0..100u32 {
        assigned.push(sw.process_packet(&PacketMeta::syn(conn(i)), t).dip.unwrap());
        t += Duration::from_micros(100);
    }
    t += Duration::from_millis(20);
    sw.advance(t);
    sw.request_update(vip(), PoolUpdate::Remove(dip(3)), t)
        .unwrap();
    t += Duration::from_millis(20);
    sw.advance(t);
    // Installed connections keep their stored DIP even after the version
    // that created them is gone.
    for (i, before) in assigned.iter().enumerate() {
        let after = sw.process_packet(&PacketMeta::data(conn(i as u32), 100), t);
        assert_eq!(after.dip, Some(*before), "conn {i} moved in direct mode");
    }
}

#[test]
fn updates_during_recording_and_draining_queue() {
    let mut cfg = SilkRoadConfig::small_test();
    cfg.cpu.insertions_per_sec = 1_000; // slow: phases last visibly long
    let mut sw = switch_with(cfg, 6);
    let mut t = Nanos::ZERO;
    for i in 0..50u32 {
        sw.process_packet(&PacketMeta::syn(conn(i)), t);
    }
    sw.request_update(vip(), PoolUpdate::Remove(dip(1)), t)
        .unwrap();
    assert_eq!(sw.update_phase(vip()), Some(UpdatePhase::Recording));
    // Request another mid-flight: must queue, not corrupt the state machine.
    sw.request_update(vip(), PoolUpdate::Remove(dip(2)), t)
        .unwrap();
    assert_eq!(sw.stats().updates_queued, 1);
    t += Duration::from_secs(2);
    sw.advance(t);
    assert_eq!(sw.update_phase(vip()), Some(UpdatePhase::Idle));
    assert_eq!(sw.stats().updates_completed, 2);
    let pool = sw.current_dips(vip()).unwrap();
    assert!(!pool.contains(&dip(1)) && !pool.contains(&dip(2)));
}

#[test]
fn transit_table_stats_track_protocol() {
    let mut sw = switch_with(SilkRoadConfig::small_test(), 4);
    let mut t = Nanos::ZERO;
    // Pending connections + update => recordings happen.
    for i in 0..30u32 {
        sw.process_packet(&PacketMeta::syn(conn(i)), t);
    }
    sw.request_update(vip(), PoolUpdate::Remove(dip(1)), t)
        .unwrap();
    // New arrivals during step 1 are recorded.
    for i in 100..130u32 {
        sw.process_packet(&PacketMeta::syn(conn(i)), t + Duration::from_micros(10));
    }
    t += Duration::from_millis(50);
    sw.advance(t);
    let (recorded, _, _, size) = sw.transit_counters();
    assert!(recorded > 0, "step 1 never recorded");
    assert_eq!(size, 256);
}

#[test]
fn vip_lifecycle_add_remove_readd() {
    let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
    sw.add_vip(vip(), vec![dip(1)]).unwrap();
    sw.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
    sw.remove_vip(vip()).unwrap();
    // Traffic to a removed VIP passes through untouched.
    let d = sw.process_packet(&PacketMeta::data(conn(1), 100), Nanos::from_millis(1));
    assert_eq!(d.path, silkroad::DataPath::NotVip);
    // Re-adding works from scratch.
    sw.add_vip(vip(), vec![dip(2)]).unwrap();
    let d = sw.process_packet(&PacketMeta::syn(conn(2)), Nanos::from_millis(2));
    assert_eq!(d.dip, Some(dip(2)));
}
