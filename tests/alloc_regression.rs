//! Allocation-regression harness for the packet hot path.
//!
//! The steady-state data plane — established connections resolving through
//! ConnTable hits — must never touch the heap: the 5-tuple key lives inline
//! on the stack ([`sr_types::TupleKey`]) and every table hash is derived
//! from one pass over it ([`silkroad::KeyHasher`]). This test installs a
//! counting global allocator and asserts **zero** allocations per packet,
//! so the property cannot silently regress.
//!
//! The counter is thread-local: the cargo test harness and any sibling
//! tests run on other threads and must not pollute the measurement.

use silkroad::{DataPath, ForwardDecision, MultiPipeSwitch, SilkRoadConfig, SilkRoadSwitch};
use sr_types::{Addr, Dip, FiveTuple, Nanos, PacketMeta, Vip};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Passes everything through to the system allocator, counting the calls
/// made by the current thread.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_so_far() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Build a switch with `n` established connections resolving through
/// ConnTable, using `client(i)` for the client side of each tuple.
fn established(
    vip_addr: Addr,
    dips: Vec<Dip>,
    n: u32,
    client: impl Fn(u32) -> Addr,
) -> (SilkRoadSwitch, Vec<FiveTuple>) {
    let cfg = SilkRoadConfig {
        conn_capacity: (n as usize) * 2,
        ..Default::default()
    };
    let mut sw = SilkRoadSwitch::new(cfg);
    sw.add_vip(Vip(vip_addr), dips).unwrap();
    let tuples: Vec<FiveTuple> = (0..n)
        .map(|i| FiveTuple::tcp(client(i), vip_addr))
        .collect();
    for t in &tuples {
        sw.process_packet(&PacketMeta::syn(*t), Nanos::ZERO);
    }
    // Let the learning filter drain and the CPU install every entry.
    sw.advance(Nanos::from_secs(10));
    (sw, tuples)
}

/// Run `packets` through the switch and return (decisions-ok, allocations).
fn measure(
    sw: &mut SilkRoadSwitch,
    tuples: &[FiveTuple],
    now: Nanos,
    per_packet: bool,
) -> (u64, u64) {
    let mut hits = 0u64;
    let before = allocs_so_far();
    if per_packet {
        for t in tuples {
            let d = sw.process_packet(&PacketMeta::data(*t, 800), now);
            hits += (d.path == DataPath::AsicConnTable) as u64;
        }
    } else {
        let pkts: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::data(*t, 800)).collect();
        let mut out: Vec<ForwardDecision> = Vec::with_capacity(pkts.len());
        let before = allocs_so_far();
        sw.process_batch_into(&pkts, now, &mut out);
        let allocs = allocs_so_far() - before;
        return (
            out.iter()
                .filter(|d| d.path == DataPath::AsicConnTable)
                .count() as u64,
            allocs,
        );
    }
    (hits, allocs_so_far() - before)
}

fn v4_dips() -> Vec<Dip> {
    (1..=16).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
}

fn v6_dips() -> Vec<Dip> {
    (1..=16u32)
        .map(|i| Dip(Addr::v6_indexed(0x0d1b, i, 20)))
        .collect()
}

#[test]
fn conn_table_hit_path_is_allocation_free() {
    const N: u32 = 4096;
    let vip_addr = Addr::v4(20, 0, 0, 1, 80);
    let (mut sw, tuples) = established(vip_addr, v4_dips(), N, |i| Addr::v4_indexed(100, i, 1024));
    assert_eq!(sw.conn_count(), N as usize, "warm-up did not install");

    // Warm one pass (hit bits flip, any one-time laziness settles).
    measure(&mut sw, &tuples, Nanos::from_secs(20), true);

    // Per-packet entry point: zero heap allocations per packet.
    let (hits, allocs) = measure(&mut sw, &tuples, Nanos::from_secs(21), true);
    assert_eq!(hits, N as u64, "steady state lost ConnTable hits");
    assert_eq!(
        allocs, 0,
        "process_packet allocated {allocs} times over {N} steady-state packets"
    );

    // Batched entry point with a recycled output buffer: also zero.
    let (hits, allocs) = measure(&mut sw, &tuples, Nanos::from_secs(22), false);
    assert_eq!(hits, N as u64);
    assert_eq!(
        allocs, 0,
        "process_batch_into allocated {allocs} times over {N} packets"
    );
}

#[test]
fn multi_pipe_steady_state_is_allocation_free() {
    // The sharded path adds steering plus per-pipe scatter/gather on top
    // of each pipe's batch pipeline; all of it must stay off the heap in
    // steady state. The inline backend runs the whole hot loop on this
    // thread, which is the path the thread-local counter can observe —
    // and it shares the steer/scatter/fold code with the per-pipe
    // workers, so what it measures is the worker hot loop's behaviour.
    const N: u32 = 4096;
    const PIPES: usize = 4;
    let vip_addr = Addr::v4(20, 0, 0, 1, 80);
    let cfg = SilkRoadConfig {
        conn_capacity: (N as usize) * 2,
        ..Default::default()
    };
    let mut sw = MultiPipeSwitch::inline(cfg, PIPES);
    sw.add_vip(Vip(vip_addr), v4_dips()).unwrap();
    let tuples: Vec<FiveTuple> = (0..N)
        .map(|i| FiveTuple::tcp(Addr::v4_indexed(100, i, 1024), vip_addr))
        .collect();
    let pkts: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::syn(*t)).collect();
    sw.process_batch(&pkts, Nanos::ZERO);
    sw.advance(Nanos::from_secs(10));
    assert_eq!(sw.conn_count(), N as usize, "warm-up did not install");

    let data: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::data(*t, 800)).collect();
    let mut out: Vec<ForwardDecision> = Vec::with_capacity(data.len());
    // Warm one pass: lane buffers grow to their steady-state capacity.
    sw.process_batch_into(&data, Nanos::from_secs(20), &mut out);

    out.clear();
    let before = allocs_so_far();
    sw.process_batch_into(&data, Nanos::from_secs(21), &mut out);
    let allocs = allocs_so_far() - before;
    let hits = out
        .iter()
        .filter(|d| d.path == DataPath::AsicConnTable)
        .count() as u64;
    assert_eq!(hits, N as u64, "steady state lost ConnTable hits");
    assert_eq!(
        allocs, 0,
        "multi-pipe batch path allocated {allocs} times over {N} packets"
    );

    // The steered per-packet entry point is also allocation-free.
    let before = allocs_so_far();
    for t in &tuples {
        sw.process_packet(&PacketMeta::data(*t, 800), Nanos::from_secs(22));
    }
    let allocs = allocs_so_far() - before;
    assert_eq!(
        allocs, 0,
        "multi-pipe process_packet allocated {allocs} times over {N} packets"
    );
}

/// Full wire-path steady state: parse raw frames, steer + resolve through
/// the multi-pipe switch, and rewrite each decision back onto the frame —
/// all with zero heap allocations per packet. Exercised for both address
/// families, both rewrite modes, and 1 and 4 pipes.
fn wire_steady_state(vip_addr: Addr, dips: Vec<Dip>, pipes: usize, mode: sr_types::RewriteMode) {
    use sr_types::FrameView;
    use sr_wire::{build_frame, parse_frame, rewrite_frame, FrameSpec};
    const N: u32 = 2048;
    let cfg = SilkRoadConfig {
        conn_capacity: (N as usize) * 2,
        ..Default::default()
    };
    let mut sw = MultiPipeSwitch::inline(cfg, pipes);
    sw.add_vip(Vip(vip_addr), dips).unwrap();
    let client = |i: u32| match vip_addr.ip {
        std::net::IpAddr::V4(_) => Addr::v4_indexed(100, i, 1024),
        std::net::IpAddr::V6(_) => Addr::v6_indexed(0xc11e, i, 1024),
    };
    let tuples: Vec<FiveTuple> = (0..N)
        .map(|i| FiveTuple::tcp(client(i), vip_addr))
        .collect();
    let syns: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::syn(*t)).collect();
    sw.process_batch(&syns, Nanos::ZERO);
    sw.advance(Nanos::from_secs(10));
    assert_eq!(sw.conn_count(), N as usize, "warm-up did not install");

    // Pre-built mid-stream data frames: the steady state re-parses these
    // bytes every pass, exactly like a NIC ring would present them.
    let frames: Vec<Vec<u8>> = tuples
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut buf = vec![0u8; 2048];
            let n = build_frame(
                &FrameSpec {
                    tuple: *t,
                    flags: sr_types::TcpFlags::ACK,
                    wire_len: 400,
                    seq: i as u64,
                },
                &mut buf,
            )
            .unwrap();
            buf.truncate(n);
            buf
        })
        .collect();

    let mut metas: Vec<PacketMeta> = Vec::with_capacity(frames.len());
    let mut views: Vec<FrameView> = Vec::with_capacity(frames.len());
    let mut out: Vec<ForwardDecision> = Vec::with_capacity(frames.len());
    let mut rewritten = [0u8; 2048];

    let mut pass = |now: Nanos| -> (u64, u64) {
        let before = allocs_so_far();
        metas.clear();
        views.clear();
        out.clear();
        for f in &frames {
            let p = parse_frame(f).unwrap();
            metas.push(p.meta);
            views.push(p.view);
        }
        sw.process_batch_into(&metas, now, &mut out);
        let mut ok = 0u64;
        for ((f, v), d) in frames.iter().zip(&views).zip(&out) {
            if let Some(op) = d.rewrite_op(mode) {
                let n = rewrite_frame(f, v, &op, &mut rewritten).unwrap();
                ok += u64::from(n >= f.len());
            }
        }
        (ok, allocs_so_far() - before)
    };

    // Warm one pass (lane buffers settle), then measure.
    pass(Nanos::from_secs(20));
    let (ok, allocs) = pass(Nanos::from_secs(21));
    assert_eq!(ok, N as u64, "steady state lost rewrites");
    assert_eq!(
        allocs,
        0,
        "wire path ({pipes} pipe(s), {} mode) allocated {allocs} times over {N} packets",
        mode.label()
    );
}

#[test]
fn wire_parse_steer_resolve_rewrite_is_allocation_free_v4() {
    let vip = Addr::v4(20, 0, 0, 1, 80);
    for pipes in [1usize, 4] {
        wire_steady_state(vip, v4_dips(), pipes, sr_types::RewriteMode::Nat);
        wire_steady_state(vip, v4_dips(), pipes, sr_types::RewriteMode::Encap);
    }
}

#[test]
fn wire_parse_steer_resolve_rewrite_is_allocation_free_v6() {
    let vip = Addr::v6_indexed(0x0a0a, 1, 443);
    for pipes in [1usize, 4] {
        wire_steady_state(vip, v6_dips(), pipes, sr_types::RewriteMode::Nat);
        wire_steady_state(vip, v6_dips(), pipes, sr_types::RewriteMode::Encap);
    }
}

/// Connection **setup** path: a warmed switch must establish a fresh
/// cohort of connections — SYN burst through the learning filter, CPU
/// install queue, cuckoo insert, and terminal promotion — without heap
/// allocations. Warmup runs a same-sized cohort first so every reusable
/// buffer (learn queue, in-flight set, CPU ring, install scratch, chunk
/// staging) reaches its high-water capacity; the alias-class map is
/// pre-sized at construction. Measured over both the SYN batch and the
/// drain `advance`, i.e. the exact window the churn benchmark times.
///
/// Digest width is 24 bits — the churn benchmark's configuration (§6.1's
/// wider point). Digest-collision classes keep two members inline, so
/// only a *three-way* digest collision ever reaches the allocator; at 24
/// bits that is birthday-cubed rare (and absent for these deterministic
/// keys), while 16-bit tables at high occupancy can legitimately hit a
/// handful per cohort.
fn setup_cohort(
    vip_addr: Addr,
    dips: Vec<Dip>,
    n: u32,
    client: impl Fn(u32) -> Addr,
) -> (u64, usize) {
    let cfg = SilkRoadConfig {
        conn_capacity: (n as usize) * 4,
        digest_bits: 24,
        ..Default::default()
    };
    let mut sw = SilkRoadSwitch::new(cfg);
    sw.add_vip(Vip(vip_addr), dips).unwrap();
    let mut out: Vec<ForwardDecision> = Vec::with_capacity(n as usize);

    // Warmup cohort: grows every buffer the setup pipeline reuses.
    let warm: Vec<PacketMeta> = (0..n)
        .map(|i| PacketMeta::syn(FiveTuple::tcp(client(i), vip_addr)))
        .collect();
    sw.process_batch_into(&warm, Nanos::ZERO, &mut out);
    sw.advance(Nanos::from_secs(10));
    assert_eq!(sw.conn_count(), n as usize, "warm-up did not install");

    // Measured cohort: n brand-new flows through the same pipeline.
    let fresh: Vec<PacketMeta> = (0..n)
        .map(|i| PacketMeta::syn(FiveTuple::tcp(client(n + i), vip_addr)))
        .collect();
    out.clear();
    let before = allocs_so_far();
    sw.process_batch_into(&fresh, Nanos::from_secs(20), &mut out);
    sw.advance(Nanos::from_secs(30));
    let allocs = allocs_so_far() - before;
    (allocs, sw.conn_count())
}

#[test]
fn connection_setup_path_is_allocation_free() {
    const N: u32 = 2048;
    let vip_addr = Addr::v4(20, 0, 0, 1, 80);
    let (allocs, conns) = setup_cohort(vip_addr, v4_dips(), N, |i| Addr::v4_indexed(100, i, 1024));
    assert_eq!(conns, 2 * N as usize, "measured cohort did not install");
    assert_eq!(
        allocs, 0,
        "setup path allocated {allocs} times establishing {N} connections"
    );
}

#[test]
fn connection_setup_path_is_allocation_free_v6() {
    const N: u32 = 1024;
    let vip_addr = Addr::v6_indexed(0x0a0a, 1, 443);
    let (allocs, conns) = setup_cohort(vip_addr, v6_dips(), N, |i| {
        Addr::v6_indexed(0xc11e, i, 1024)
    });
    assert_eq!(conns, 2 * N as usize, "measured cohort did not install");
    assert_eq!(
        allocs, 0,
        "v6 setup path allocated {allocs} times establishing {N} connections"
    );
}

#[test]
fn conn_table_hit_path_is_allocation_free_v6() {
    const N: u32 = 2048;
    let vip_addr = Addr::v6_indexed(0x0a0a, 1, 443);
    let (mut sw, tuples) = established(vip_addr, v6_dips(), N, |i| {
        Addr::v6_indexed(0xc11e, i, 1024)
    });
    assert_eq!(sw.conn_count(), N as usize, "warm-up did not install");

    measure(&mut sw, &tuples, Nanos::from_secs(20), true);
    let (hits, allocs) = measure(&mut sw, &tuples, Nanos::from_secs(21), true);
    assert_eq!(hits, N as u64, "steady state lost ConnTable hits");
    assert_eq!(
        allocs, 0,
        "v6 hit path allocated {allocs} times over {N} packets"
    );
}
