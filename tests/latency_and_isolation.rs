//! Integration tests for the two performance claims that motivate the
//! paper (§2.2): load-balancer processing latency and per-VIP isolation.

use silkroad::{PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_asic::MeterConfig;
use sr_baselines::SlbConfig;
use sr_sim::adapters::{SilkRoadAdapter, SlbAdapter};
use sr_sim::{Harness, HarnessConfig};
use sr_types::{Addr, AddrFamily, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};
use sr_workload::TraceConfig;

fn trace(seed: u64) -> TraceConfig {
    TraceConfig {
        vips: 8,
        dips_per_vip: 6,
        new_conns_per_min: 3_000.0,
        median_flow_secs: 15.0,
        flow_sigma: 0.8,
        median_rate_bps: 150_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min: 10.0,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(3),
        family: AddrFamily::V4,
        seed,
    }
}

#[test]
fn latency_gap_is_orders_of_magnitude() {
    // §2.2: SLBs add 50 µs – 1 ms; the ASIC adds well under a microsecond.
    let mut silkroad = SilkRoadAdapter::new(SilkRoadConfig {
        conn_capacity: 50_000,
        ..SilkRoadConfig::default()
    });
    let m_sr = Harness::new(trace(1), HarnessConfig::default()).run(&mut silkroad);
    let mut slb = SlbAdapter::new(SlbConfig::default());
    let m_slb = Harness::new(trace(1), HarnessConfig::default()).run(&mut slb);

    let sr_p50 = m_sr.latency.percentile(50.0);
    let slb_p50 = m_slb.latency.percentile(50.0);
    assert!(sr_p50 < Duration::from_micros(2), "silkroad p50 {sr_p50}");
    assert!(slb_p50 >= Duration::from_micros(50), "slb p50 {slb_p50}");
    // "two orders of magnitude" is the paper's framing; we comfortably
    // exceed it.
    assert!(
        slb_p50.0 > sr_p50.0 * 50,
        "gap too small: {slb_p50} vs {sr_p50}"
    );
    // SLB latency stays within the paper's stated band at p99.
    let slb_p99 = m_slb.latency.percentile(99.0);
    assert!(slb_p99 <= Duration::from_millis(2), "slb p99 {slb_p99}");
}

#[test]
fn meter_isolates_victim_vip_from_a_flash_crowd() {
    // §2.2's isolation complaint about SLBs, solved in hardware: a metered
    // VIP under flash crowd loses its own excess traffic only; a quiet VIP
    // on the same switch sees no drops and no PCC disturbance.
    let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
    let hot = Vip(Addr::v4(20, 0, 0, 1, 80));
    let quiet = Vip(Addr::v4(20, 0, 0, 2, 80));
    sw.add_vip(
        hot,
        (1..=4).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
    )
    .unwrap();
    sw.add_vip(
        quiet,
        (5..=8).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
    )
    .unwrap();
    // Police the hot VIP at ~10 Mbit/s committed.
    sw.attach_meter(
        hot,
        MeterConfig {
            cir_bps: 1_250_000,
            cbs: 30_000,
            eir_bps: 0,
            ebs: 0,
        },
    );

    // Establish a quiet-VIP connection first.
    let q = FiveTuple::tcp(Addr::v4(9, 9, 9, 9, 1000), quiet.0);
    let mut t = Nanos::ZERO;
    let q_dip = sw.process_packet(&PacketMeta::syn(q), t).dip.unwrap();
    t += Duration::from_millis(10);
    sw.advance(t);

    // Flash crowd: ~100 Mbit/s at the hot VIP for one second.
    let mut hot_drops = 0u64;
    let mut quiet_ok = 0u32;
    for i in 0..8_000u32 {
        let c = FiveTuple::tcp(Addr::v4_indexed(3, i, 40_000), hot.0);
        let d = sw.process_packet(&PacketMeta::data(c, 1500), t);
        if d.dip.is_none() {
            hot_drops += 1;
        }
        // Interleave quiet-VIP packets: they must never drop or move.
        if i % 100 == 0 {
            let dq = sw.process_packet(&PacketMeta::data(q, 200), t);
            assert_eq!(dq.dip, Some(q_dip), "quiet VIP disturbed at {t}");
            quiet_ok += 1;
        }
        t += Duration::from_micros(125);
    }
    assert!(hot_drops > 5_000, "meter too lax: {hot_drops}");
    assert_eq!(quiet_ok, 80);
    assert_eq!(sw.stats().metered_drops, hot_drops);

    // A pool update on the hot VIP mid-crowd still completes, and the
    // quiet VIP remains untouched.
    sw.request_update(hot, PoolUpdate::Remove(Dip(Addr::v4(10, 0, 0, 1, 20))), t)
        .unwrap();
    t += Duration::from_millis(50);
    sw.advance(t);
    assert_eq!(
        sw.update_phase(hot),
        Some(silkroad::UpdatePhase::Idle),
        "update wedged under flash crowd"
    );
    let dq = sw.process_packet(&PacketMeta::data(q, 200), t);
    assert_eq!(dq.dip, Some(q_dip));
}
