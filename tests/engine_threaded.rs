//! Stress tests for the run-to-completion engine (threaded backend):
//! control-plane churn concurrent with streamed traffic must not perturb
//! decisions, and shutdown must be clean no matter how many batches are
//! still in flight.
//!
//! The decision-identity tests rely on the engine's determinism argument:
//! the SPSC job rings are FIFO and the facade publishes control ops and
//! dispatches batches in program order, so every worker observes the same
//! op/batch interleaving regardless of pipe count or backend. The
//! commutative stream digest then has to be bit-identical everywhere —
//! one 64-bit value summarizing every DIP, path, and version choice.

use silkroad::{
    EngineOptions, HealthEvent, MultiPipeSwitch, PoolUpdate, SilkRoadConfig, StreamStats,
};
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};

const FLOWS: u32 = 2_048;
const BATCH: usize = 192; // deliberately not a divisor of FLOWS

fn cfg() -> SilkRoadConfig {
    SilkRoadConfig {
        conn_capacity: 8_192,
        digest_bits: 24,
        transit_bytes: 4_096,
        ..Default::default()
    }
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn dips() -> Vec<Dip> {
    (1..=8).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
}

fn conn(i: u32) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(100, i, 1024 + (i % 13) as u16), vip().0)
}

fn build(pipes: usize, threaded: bool) -> MultiPipeSwitch {
    let mut sw = MultiPipeSwitch::with_options(
        cfg(),
        pipes,
        EngineOptions {
            threaded,
            ..EngineOptions::default()
        },
    );
    sw.add_vip(vip(), dips()).unwrap();
    sw
}

/// One fixed script: streamed steady-state traffic with VIP flips, a
/// 3-step PCC pool update, health events, and idle expiry landing
/// *between* streamed batches (the only place control ops can land — the
/// facade pumps in-flight completions while each op propagates).
fn churn_script(sw: &mut MultiPipeSwitch) -> StreamStats {
    let aux_vip = Vip(Addr::v4(20, 0, 0, 2, 443));
    let aux_dips: Vec<Dip> = (1..=4).map(|i| Dip(Addr::v4(10, 0, 1, i, 20))).collect();

    // Establish all flows synchronously so the streamed window below is
    // pure steady state.
    let syns: Vec<PacketMeta> = (0..FLOWS).map(|i| PacketMeta::syn(conn(i))).collect();
    let mut now = Nanos::ZERO;
    for wave in syns.chunks(512) {
        sw.process_batch(wave, now);
        now = now.saturating_add(Duration::from_millis(10));
        sw.advance(now);
    }
    let data: Vec<PacketMeta> = syns
        .iter()
        .map(|p| PacketMeta::data(p.tuple, 800))
        .collect();

    // Streamed pass 1 with control churn landing mid-stream.
    let t = Nanos::from_secs(5);
    let chunks: Vec<&[PacketMeta]> = data.chunks(BATCH).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        sw.stream_batch(chunk, t);
        match i {
            1 => sw.add_vip(aux_vip, aux_dips.clone()).unwrap(),
            2 => sw
                .request_update(vip(), PoolUpdate::Remove(Dip(Addr::v4(10, 0, 0, 8, 20))), t)
                .unwrap(),
            3 => sw
                .apply_health_events(
                    &[
                        HealthEvent::Down(vip(), Dip(Addr::v4(10, 0, 0, 7, 20))),
                        HealthEvent::Up(aux_vip, Dip(Addr::v4(10, 0, 1, 9, 20))),
                    ],
                    t,
                )
                .unwrap(),
            5 => sw.advance(t.saturating_add(Duration::from_secs(5))),
            7 => {
                // Expiry mid-stream: nothing is idle long enough, so this
                // must be a deterministic no-op on every pipe count.
                assert_eq!(sw.expire_idle(t), 0);
            }
            8 => sw.remove_vip(aux_vip).unwrap(),
            _ => {}
        }
    }

    // Streamed pass 2 after the churn: flows must still resolve (PCC kept
    // them pinned through the pool update and health flips).
    let t2 = Nanos::from_secs(30);
    sw.advance(t2);
    for chunk in &chunks {
        sw.stream_batch(chunk, t2);
    }
    sw.stream_drain()
}

#[test]
fn control_churn_concurrent_with_streaming_keeps_decisions_identical() {
    let runs = [(1, false), (4, false), (1, true), (2, true), (4, true)];
    let mut stats: Vec<(usize, bool, StreamStats)> = Vec::new();
    for (pipes, threaded) in runs {
        let mut sw = build(pipes, threaded);
        stats.push((pipes, threaded, churn_script(&mut sw)));
    }
    let (p0, t0, base) = stats[0];
    assert_eq!(base.packets, 2 * FLOWS as u64);
    for (pipes, threaded, s) in &stats[1..] {
        assert_eq!(
            *s, base,
            "{pipes} pipes (threaded={threaded}) diverged from {p0} pipes (threaded={t0})"
        );
    }
}

#[test]
fn streamed_and_sync_traffic_interleave_identically_across_backends() {
    // process_packet/process_batch quiesce the target worker, so mixing
    // them with streaming is an ordering torture test: every sync call is
    // a barrier on one pipe while others may still hold staged batches.
    let mut digests = Vec::new();
    for (pipes, threaded) in [(1, false), (2, true), (4, true)] {
        let mut sw = build(pipes, threaded);
        let syns: Vec<PacketMeta> = (0..512).map(|i| PacketMeta::syn(conn(i))).collect();
        sw.process_batch(&syns, Nanos::ZERO);
        sw.advance(Nanos::from_secs(1));
        let data: Vec<PacketMeta> = syns
            .iter()
            .map(|p| PacketMeta::data(p.tuple, 800))
            .collect();
        let t = Nanos::from_secs(2);
        let mut sync_word = 0u64;
        for (i, chunk) in data.chunks(64).enumerate() {
            sw.stream_batch(chunk, t);
            if i % 3 == 0 {
                // A sync probe mid-stream: its decision feeds a separate
                // fold so backends must agree on it too.
                let d = sw.process_packet(&PacketMeta::data(conn(i as u32), 800), t);
                sync_word = sync_word
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add(d.dip.map_or(0, |dip| u64::from(dip.0.port)));
            }
        }
        let streamed = sw.stream_drain();
        digests.push((pipes, threaded, streamed, sync_word));
    }
    let (_, _, base_stream, base_sync) = digests[0];
    for (pipes, threaded, s, sync) in &digests[1..] {
        assert_eq!(
            *s, base_stream,
            "{pipes} pipes (threaded={threaded}) stream fold diverged"
        );
        assert_eq!(
            *sync, base_sync,
            "{pipes} pipes (threaded={threaded}) sync probes diverged"
        );
    }
}

#[test]
fn shutdown_with_in_flight_batches_never_hangs_or_leaks_workers() {
    // Threads named sr-pipe-* must all be gone after each drop; /proc is
    // the ground truth on Linux (skip the count elsewhere).
    fn worker_threads() -> Option<usize> {
        let dir = std::fs::read_dir("/proc/self/task").ok()?;
        let mut n = 0;
        for t in dir.flatten() {
            let comm = std::fs::read_to_string(t.path().join("comm")).unwrap_or_default();
            if comm.starts_with("sr-pipe-") {
                n += 1;
            }
        }
        Some(n)
    }

    let syns: Vec<PacketMeta> = (0..512).map(|i| PacketMeta::syn(conn(i))).collect();
    let data: Vec<PacketMeta> = syns
        .iter()
        .map(|p| PacketMeta::data(p.tuple, 800))
        .collect();
    for round in 0..24 {
        let pipes = [1, 2, 4][round % 3];
        let mut sw = build(pipes, true);
        sw.process_batch(&syns, Nanos::ZERO);
        let t = Nanos::from_secs(1);
        // Leave up to ring_depth batches in flight per pipe, plus staged
        // partial batches — then drop without draining.
        for chunk in data.chunks(96) {
            sw.stream_batch(chunk, t);
        }
        if round % 2 == 0 {
            // Half the rounds also leave a control op as the *last* job.
            sw.advance(Nanos::from_secs(2));
        }
        drop(sw);
        if let Some(n) = worker_threads() {
            assert_eq!(n, 0, "round {round}: {n} sr-pipe workers leaked");
        }
    }

    // Degenerate lifecycles: drop immediately after spawn, and drop with
    // zero traffic but queued control ops.
    for pipes in [1, 2, 4] {
        drop(build(pipes, true));
        let mut sw = build(pipes, true);
        sw.advance(Nanos::from_secs(1));
        drop(sw);
    }
    if let Some(n) = worker_threads() {
        assert_eq!(n, 0, "degenerate lifecycles leaked {n} workers");
    }
}

#[test]
fn queries_are_consistent_while_streams_are_in_flight() {
    let mut sw = build(4, true);
    let syns: Vec<PacketMeta> = (0..FLOWS).map(|i| PacketMeta::syn(conn(i))).collect();
    sw.process_batch(&syns, Nanos::ZERO);
    sw.advance(Nanos::from_secs(1));
    let data: Vec<PacketMeta> = syns
        .iter()
        .map(|p| PacketMeta::data(p.tuple, 800))
        .collect();
    let t = Nanos::from_secs(2);
    for chunk in data.chunks(BATCH) {
        sw.stream_batch(chunk, t);
    }
    // Queries land after all published jobs (FIFO rings), so they see
    // every streamed packet dispatched so far once the workers catch up.
    assert_eq!(sw.conn_count(), FLOWS as usize);
    let stats = sw.stats();
    assert_eq!(stats.packets, 2 * u64::from(FLOWS));
    let drained = sw.stream_drain();
    assert_eq!(drained.packets, FLOWS as u64);
}
