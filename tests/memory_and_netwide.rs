//! Integration tests tying the analytic memory model to the live switch,
//! and the network-wide assignment to the workload fleet.

use silkroad::memory::{cost, MemoryDesign, MemoryInputs};
use silkroad::{SilkRoadConfig, SilkRoadSwitch};
use sr_netwide::{assign_vips, switch_failure_impact, Layer, Topology, VipDemand};
use sr_types::{
    Addr, AddrFamily, Dip, Duration, FiveTuple, Nanos, PacketMeta, PoolVersion, Vip, VipId,
};
use sr_workload::{synthesize_fleet, ClusterKind, FleetConfig};

#[test]
fn live_switch_memory_matches_analytic_model() {
    // Install a known population and compare the switch's occupied
    // ConnTable bytes against the 28-bit entry model.
    let cfg = SilkRoadConfig {
        conn_capacity: 50_000,
        ..Default::default()
    };
    let mut sw = SilkRoadSwitch::new(cfg);
    let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
    sw.add_vip(
        vip,
        (1..=8).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
    )
    .unwrap();
    let n = 10_000u32;
    for i in 0..n {
        let c = FiveTuple::tcp(Addr::v4_indexed(1, i, 30_000), vip.0);
        sw.process_packet(&PacketMeta::syn(c), Nanos::ZERO);
    }
    sw.advance(Nanos::from_secs(2));
    assert_eq!(sw.conn_count(), n as usize);

    let analytic = cost(
        MemoryDesign::DigestVersion {
            digest_bits: 16,
            version_bits: 6,
        },
        &MemoryInputs {
            connections: n as u64,
            vips: 1,
            total_pool_members: 8,
            pool_rows: 1,
            family: AddrFamily::V4,
        },
    );
    let live = sw.memory();
    // Same model, same numbers (whole-word rounding only).
    let diff = (live.conn_table as f64 - analytic.conn_table as f64).abs();
    assert!(
        diff / (analytic.conn_table as f64) < 0.01,
        "live {} vs analytic {}",
        live.conn_table,
        analytic.conn_table
    );
}

#[test]
fn fleet_vips_pack_into_a_fabric() {
    // Deploy a mid-sized PoP cluster's VIPs across a 50 MB/switch fabric.
    let fleet = synthesize_fleet(FleetConfig::default());
    let c = fleet
        .iter()
        .filter(|c| c.kind == ClusterKind::PoP)
        .min_by_key(|c| c.conns_per_tor_p99)
        .unwrap();
    let conns_per_vip = c.total_conns_p99() / c.vips as u64;
    let demands: Vec<VipDemand> = (0..c.vips)
        .map(|i| VipDemand {
            vip: VipId(i),
            traffic_gbps: c.peak_gbps / c.vips as f64,
            memory_bytes: conns_per_vip * 4, // 28 bits + packing ≈ 3.5 B
        })
        .collect();
    let topo = Topology::clos(c.tors, 8, 4, 50 << 20, 6400.0);
    let a = assign_vips(&topo, &demands).expect("smallest PoP must fit");
    assert_eq!(a.layer_of.len(), c.vips as usize);
    assert!(a.max_sram_utilization() <= 1.0);
}

#[test]
fn failure_impact_consistent_with_switch_population() {
    // Build a population on a switch with an update mid-stream, then check
    // the failover arithmetic on its version breakdown.
    let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
    let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
    sw.add_vip(
        vip,
        (1..=4).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
    )
    .unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..200u32 {
        let c = FiveTuple::tcp(Addr::v4_indexed(1, i, 30_000), vip.0);
        sw.process_packet(&PacketMeta::syn(c), t);
        t += Duration::from_micros(50);
    }
    t += Duration::from_millis(20);
    sw.advance(t);
    sw.request_update(
        vip,
        silkroad::PoolUpdate::Remove(Dip(Addr::v4(10, 0, 0, 2, 20))),
        t,
    )
    .unwrap();
    t += Duration::from_millis(20);
    sw.advance(t);
    // Old connections reference the old version; new ones the new version.
    for i in 200..300u32 {
        let c = FiveTuple::tcp(Addr::v4_indexed(1, i, 30_000), vip.0);
        sw.process_packet(&PacketMeta::syn(c), t);
    }
    t += Duration::from_millis(20);
    sw.advance(t);

    let newest = sw.current_version(vip).unwrap();
    // 200 old conns at risk, 100 new ones preserved.
    let report = switch_failure_impact(&[(PoolVersion(0), 200), (newest, 100)], newest);
    assert_eq!(report.at_risk, 200);
    assert_eq!(report.preserved, 100);
}

#[test]
fn fig12_style_memory_spans_generations() {
    // The largest Backend in the fleet fits a 2016 ASIC but not a 2012 one.
    let fleet = synthesize_fleet(FleetConfig::default());
    let biggest = fleet.iter().max_by_key(|c| c.conns_per_tor_p99).unwrap();
    let mb = cost(
        MemoryDesign::DigestVersion {
            digest_bits: 16,
            version_bits: 6,
        },
        &MemoryInputs {
            connections: biggest.conns_per_tor_p99,
            vips: biggest.vips as u64,
            total_pool_members: biggest.total_dips() * biggest.live_versions_per_vip as u64,
            pool_rows: (biggest.vips * biggest.live_versions_per_vip) as u64,
            family: biggest.family,
        },
    )
    .total_mb();
    assert!(mb > 20.0, "peak cluster suspiciously small: {mb} MB");
    assert!(mb < 100.0, "peak cluster must fit a 2016 ASIC: {mb} MB");
}

#[test]
fn all_layer_assignment_respects_budget_scaling() {
    // Shrinking the budget strictly increases max utilization until
    // infeasible.
    let demands: Vec<VipDemand> = (0..50)
        .map(|i| VipDemand {
            vip: VipId(i),
            traffic_gbps: 2.0,
            memory_bytes: 4 << 20,
        })
        .collect();
    let mut last = 0.0;
    let mut became_infeasible = false;
    for budget_mb in [64u64, 16, 4, 1] {
        let topo = Topology::clos(8, 4, 2, budget_mb << 20, 6400.0);
        match assign_vips(&topo, &demands) {
            Ok(a) => {
                assert!(a.max_sram_utilization() >= last);
                last = a.max_sram_utilization();
                assert_eq!(
                    a.layer_of.values().filter(|l| **l == Layer::ToR).count()
                        + a.layer_of.values().filter(|l| **l != Layer::ToR).count(),
                    50
                );
            }
            Err(_) => {
                became_infeasible = true;
            }
        }
    }
    assert!(
        became_infeasible,
        "1 MB budget should not fit 200 MB of VIPs"
    );
}
