//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use silkroad::pool::{DipPool, PoolUpdate};
use silkroad::version::VersionManager;
use silkroad::{SilkRoadConfig, SilkRoadSwitch};
use sr_hash::cuckoo::{CuckooConfig, CuckooTable, MatchMode};
use sr_hash::BloomFilter;
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};
use std::collections::HashMap;

fn dip(i: u8) -> Dip {
    Dip(Addr::v4(10, 0, 0, i, 20))
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn conn(i: u32) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(1, i, 30_000), Addr::v4(20, 0, 0, 1, 80))
}

// ----------------------------------------------------------------- cuckoo

/// Operations for the cuckoo model test.
#[derive(Clone, Debug)]
enum CuckooOp {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
}

fn cuckoo_op() -> impl Strategy<Value = CuckooOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| CuckooOp::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| CuckooOp::Remove(k % 512)),
        any::<u16>().prop_map(|k| CuckooOp::Lookup(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A full-key cuckoo table behaves exactly like a HashMap (as long as
    /// it does not overflow, which the key universe prevents here).
    #[test]
    fn cuckoo_matches_model(ops in proptest::collection::vec(cuckoo_op(), 1..300)) {
        let mut table: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 64,
            entries_per_word: 4,
            match_mode: MatchMode::FullKey,
            seed: 99,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        });
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                CuckooOp::Insert(k, v) => {
                    let t = table.insert(&k.to_be_bytes(), v);
                    let m = model.contains_key(&k);
                    prop_assert_eq!(t.is_err(), m, "insert divergence on {}", k);
                    if t.is_ok() {
                        model.insert(k, v);
                    }
                }
                CuckooOp::Remove(k) => {
                    let t = table.remove(&k.to_be_bytes());
                    let m = model.remove(&k);
                    prop_assert_eq!(t.ok(), m);
                }
                CuckooOp::Lookup(k) => {
                    let t = table.lookup(&k.to_be_bytes()).map(|h| *h.value);
                    prop_assert_eq!(t, model.get(&k).copied());
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// Bloom filters never produce false negatives, under any interleaving
    /// of inserts and clears.
    #[test]
    fn bloom_no_false_negatives(
        keys in proptest::collection::vec(any::<u64>(), 1..200),
        size in 8usize..512,
        k in 1usize..6,
    ) {
        let mut f = BloomFilter::new(size, k, 42);
        for key in &keys {
            f.insert(&key.to_be_bytes());
        }
        for key in &keys {
            prop_assert!(f.contains(&key.to_be_bytes()));
        }
        f.clear();
        prop_assert_eq!(f.fill_ratio(), 0.0);
    }

    /// The version manager conserves its ring: live versions plus free
    /// numbers never exceed the ring size, the current version always has a
    /// pool, and reuse never changes the member set a new version exposes.
    #[test]
    fn version_manager_conserves_ring(
        ops in proptest::collection::vec((any::<bool>(), 0u8..6), 1..120)
    ) {
        let pool = DipPool::new((1..=6).map(dip).collect());
        let mut m = VersionManager::new(vip(), pool, 4, true);
        let mut live_dips: Vec<Dip> = (1..=6).map(dip).collect();
        for (is_add, d) in ops {
            let d = dip(d + 1);
            let op = if is_add { PoolUpdate::Add(d) } else { PoolUpdate::Remove(d) };
            match m.prepare(op) {
                Ok(Some(p)) => {
                    m.commit(p.new_version);
                    if is_add {
                        if !live_dips.contains(&d) { live_dips.push(d); }
                    } else {
                        live_dips.retain(|x| *x != d);
                    }
                }
                Ok(None) => {}
                Err(_) => {} // exhausted: acceptable, state must stay sane
            }
            // Invariants.
            prop_assert!(m.live_versions() as u32 <= m.ring_size());
            let cur = m.current_pool();
            let mut a: Vec<Dip> = cur.members().to_vec();
            let mut b = live_dips.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "current pool diverged from expected membership");
        }
    }
}

// --------------------------------------------------- switch-level PCC

/// Random interleavings of traffic and updates never break an installed
/// connection to a surviving DIP.
#[derive(Clone, Debug)]
enum SwitchOp {
    Packet(u32),
    AdvanceMs(u8),
    Update(bool, u8),
    Close(u32),
}

fn switch_op() -> impl Strategy<Value = SwitchOp> {
    prop_oneof![
        4 => (0u32..64).prop_map(SwitchOp::Packet),
        2 => any::<u8>().prop_map(|ms| SwitchOp::AdvanceMs(ms % 20 + 1)),
        1 => (any::<bool>(), 0u8..6).prop_map(|(a, d)| SwitchOp::Update(a, d)),
        1 => (0u32..64).prop_map(SwitchOp::Close),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn switch_pcc_under_random_interleavings(
        ops in proptest::collection::vec(switch_op(), 1..200)
    ) {
        let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
        sw.add_vip(vip(), (1..=6).map(dip).collect()).unwrap();
        let mut t = Nanos::ZERO;
        // conn id -> (first dip, dead because its dip was removed)
        let mut seen: HashMap<u32, (Dip, bool)> = HashMap::new();
        let mut closed: std::collections::HashSet<u32> = Default::default();
        // DIPs with a requested (possibly still queued) removal: a
        // connection assigned to one of these is administratively dead.
        let mut removed: std::collections::HashSet<Dip> = Default::default();
        for op in ops {
            match op {
                SwitchOp::Packet(i) => {
                    if closed.contains(&i) {
                        continue;
                    }
                    let first = !seen.contains_key(&i);
                    let pkt = if first {
                        PacketMeta::syn(conn(i))
                    } else {
                        PacketMeta::data(conn(i), 800)
                    };
                    let d = sw.process_packet(&pkt, t);
                    let Some(got) = d.dip else { continue };
                    match seen.get(&i) {
                        None => {
                            seen.insert(i, (got, removed.contains(&got)));
                        }
                        Some((assigned, dead)) => {
                            if !dead && !d.false_hit {
                                prop_assert_eq!(
                                    got, *assigned,
                                    "PCC violated for conn {} at {}", i, t
                                );
                            }
                        }
                    }
                }
                SwitchOp::AdvanceMs(ms) => {
                    t += Duration::from_millis(ms as u64);
                    sw.advance(t);
                }
                SwitchOp::Update(is_add, d) => {
                    let d = dip(d + 1);
                    let pool_len = sw.current_dips(vip()).unwrap().len();
                    // Keep the pool non-empty, as operators do.
                    if !is_add && pool_len <= 1 {
                        continue;
                    }
                    let op = if is_add { PoolUpdate::Add(d) } else { PoolUpdate::Remove(d) };
                    sw.request_update(vip(), op, t).unwrap();
                    if is_add {
                        removed.remove(&d);
                    } else {
                        removed.insert(d);
                        for (_, (assigned, dead)) in seen.iter_mut() {
                            if *assigned == d {
                                *dead = true;
                            }
                        }
                    }
                }
                SwitchOp::Close(i) => {
                    if seen.contains_key(&i) && closed.insert(i) {
                        sw.close_connection(&conn(i), t);
                    }
                }
            }
        }
    }
}

/// Deterministic replay of the counterexample proptest once shrank to
/// (see `proptests.proptest-regressions`): two updates land back-to-back
/// while a connection is still pending, then its data packets must keep
/// resolving to the first DIP it was given. Kept as a plain test so the
/// regression is exercised on every run, not only when proptest replays
/// its seed file.
#[test]
fn pinned_counterexample_update_update_while_pending() {
    // ops = [Update(false, 5), Packet(0), Update(true, 5),
    //        Update(false, 1), Packet(11), AdvanceMs(2), Packet(11)]
    let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
    sw.add_vip(vip(), (1..=6).map(dip).collect()).unwrap();
    let t0 = Nanos::ZERO;

    sw.request_update(vip(), PoolUpdate::Remove(dip(6)), t0)
        .unwrap();
    let _ = sw.process_packet(&PacketMeta::syn(conn(0)), t0);
    sw.request_update(vip(), PoolUpdate::Add(dip(6)), t0)
        .unwrap();
    sw.request_update(vip(), PoolUpdate::Remove(dip(2)), t0)
        .unwrap();

    let first = sw.process_packet(&PacketMeta::syn(conn(11)), t0);
    let assigned = first.dip.expect("SYN must be assigned a DIP");

    let t1 = t0 + Duration::from_millis(2);
    sw.advance(t1);
    let again = sw.process_packet(&PacketMeta::data(conn(11), 800), t1);
    // dip(2)'s removal was requested before conn 11 arrived; if the switch
    // assigned it anyway the connection is administratively dead and the
    // PCC claim does not apply.
    if assigned != dip(2) && !again.false_hit {
        assert_eq!(
            again.dip,
            Some(assigned),
            "PCC violated replaying the pinned counterexample"
        );
    }
}

// ------------------------------------------------- hot-path key equivalence

/// Expand two 64-bit halves into eight IPv6 segments.
fn v6_segs(hi: u64, lo: u64) -> [u16; 8] {
    let mut s = [0u16; 8];
    for i in 0..4 {
        s[i] = (hi >> (48 - 16 * i)) as u16;
        s[4 + i] = (lo >> (48 - 16 * i)) as u16;
    }
    s
}

fn proto_of(udp: bool) -> sr_types::Protocol {
    if udp {
        sr_types::Protocol::Udp
    } else {
        sr_types::Protocol::Tcp
    }
}

/// Any v4 or v6 5-tuple, arbitrary addresses/ports/protocol.
fn any_tuple() -> impl Strategy<Value = FiveTuple> {
    let v4 = (
        (any::<u32>(), any::<u16>()),
        (any::<u32>(), any::<u16>()),
        any::<bool>(),
    )
        .prop_map(|((s, sp), (d, dp), udp)| {
            let s = s.to_be_bytes();
            let d = d.to_be_bytes();
            FiveTuple {
                src: Addr::v4(s[0], s[1], s[2], s[3], sp),
                dst: Addr::v4(d[0], d[1], d[2], d[3], dp),
                proto: proto_of(udp),
            }
        });
    let v6 = (
        (any::<u64>(), any::<u64>(), any::<u16>()),
        (any::<u64>(), any::<u64>(), any::<u16>()),
        any::<bool>(),
    )
        .prop_map(|((sh, sl, sp), (dh, dl, dp), udp)| FiveTuple {
            src: Addr::v6(v6_segs(sh, sl), sp),
            dst: Addr::v6(v6_segs(dh, dl), dp),
            proto: proto_of(udp),
        });
    prop_oneof![v4, v6]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The inline stack key encodes exactly the same bytes as the heap
    /// `key_bytes()` encoding, for both families and both protocols.
    #[test]
    fn tuple_key_matches_key_bytes(t in any_tuple()) {
        let key = t.tuple_key();
        prop_assert_eq!(key.as_slice(), &t.key_bytes()[..]);
        prop_assert_eq!(key.len(), t.key_len());
    }

    /// Every hash the packet path derives from one `KeyHasher` pass is
    /// bit-identical to running the corresponding standalone `HashFn` over
    /// the key bytes — the invariant that keeps all experiment outputs
    /// byte-for-byte stable across the hash-once refactor.
    #[test]
    fn hashed_key_matches_standalone_hashes(t in any_tuple(), seed in any::<u64>()) {
        use silkroad::conn_table::ConnTable;
        use silkroad::transit::TransitTable;
        use silkroad::KeyHasher;
        use sr_hash::HashFn;

        let cfg = SilkRoadConfig { seed, ..SilkRoadConfig::small_test() };
        let conn_table = ConnTable::new(&cfg);
        let transit = TransitTable::new(
            cfg.transit_bytes,
            cfg.transit_hashes,
            cfg.seed,
            cfg.transit_enabled,
        );
        let select = HashFn::new(cfg.seed ^ 0x5e1ec7);
        let hasher = KeyHasher::new(
            conn_table.stage_fns(),
            conn_table.match_fn(),
            select,
            transit.hash_fns(),
        );

        let hashed = hasher.hash_tuple(&t);
        let key = t.key_bytes();
        prop_assert_eq!(hashed.key().as_slice(), &key[..]);
        for (i, f) in conn_table.stage_fns().iter().enumerate() {
            prop_assert_eq!(hashed.conn_stage_hashes()[i], f.hash(&key));
        }
        prop_assert_eq!(hashed.conn_match_hash(), conn_table.match_fn().hash(&key));
        prop_assert_eq!(hashed.select_hash(), select.hash(&key));
        let bloom = hasher.bloom_hashes(hashed.key());
        for (i, f) in transit.hash_fns().iter().enumerate() {
            prop_assert_eq!(bloom.as_slice()[i], f.hash(&key));
        }
    }
}
